// Package metrics is a small, dependency-free metrics registry exposing
// the Prometheus text exposition format, built for the HTTP serving
// layer (internal/httpserve). It supports the three instrument shapes
// the serving path needs — monotonic counters, point-in-time gauges and
// fixed-bucket latency histograms — plus labelled families ("vecs") and
// function-backed instruments that sample a live value at scrape time,
// which is how the serving engine's atomic stat counters are exported
// without a second bookkeeping path.
//
// Concurrency contract: every instrument method (Inc, Add, Set, Observe,
// With) is safe for concurrent use from any goroutine; instruments are
// lock-free atomics on the hot path, and families intern label children
// under a short mutex. WritePrometheus may run concurrently with
// updates; it renders a point-in-time snapshot of each series.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Buckets are cumulative at exposition time; here each observation
	// lands in its first covering bucket (or the implicit +Inf slot).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// DefBuckets are latency bounds in seconds spanning the sub-millisecond
// cache-hit path through multi-second cold batches.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// instrument kinds, also the exposition TYPE names.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one exposed time series: a label set plus its instrument.
type series struct {
	labels string // rendered {k="v",...} body, "" when unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // function-backed counter or gauge
}

// family groups series sharing one metric name, HELP and TYPE.
type family struct {
	name, help, typ string
	buckets         []float64 // histograms only

	mu       sync.Mutex
	order    []string
	children map[string]*series
}

func (f *family) child(labels string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.children[labels]; ok {
		return s
	}
	s := &series{labels: labels}
	switch f.typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		h := &Histogram{bounds: f.buckets}
		h.counts = make([]atomic.Uint64, len(f.buckets)+1)
		s.h = h
	}
	f.children[labels] = s
	f.order = append(f.order, labels)
	return s
}

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; create with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hooks    []func()

	// writeMu serialises whole scrapes: BeforeWrite hooks and the
	// render they feed run as one critical section, so two concurrent
	// WritePrometheus calls cannot interleave — every exposition is
	// rendered entirely against its own hooks' snapshot. Holding it
	// across the render's writes is the point; only scrapes contend.
	//
	// fhcvet:coarse
	writeMu sync.Mutex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// BeforeWrite registers fn to run at the start of every WritePrometheus
// call, before any series renders. Function-backed instruments use it to
// capture one consistent snapshot per scrape instead of sampling live
// state once per series.
func (r *Registry) BeforeWrite(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// register creates or fetches a family, panicking on a name reused with
// a different type — a programming error, like Prometheus client_golang.
func (r *Registry) register(name, help, typ string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %s reregistered as %s (was %s)", name, typ, f.typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, buckets: buckets, children: map[string]*series{}}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, typeCounter, nil).child("").c
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, nil).child("").g
}

// Histogram registers (or fetches) an unlabelled fixed-bucket histogram.
// Bounds must be ascending; nil selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, typeHistogram, buckets).child("").h
}

// CounterFunc registers a counter whose value is sampled at scrape time.
// fn must be monotonic and safe to call concurrently.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, typeCounter, nil).child("").fn = fn
}

// GaugeFunc registers a gauge sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, typeGauge, nil).child("").fn = fn
}

// CounterVec is a labelled counter family.
type CounterVec struct {
	f      *family
	labels []string
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, nil), labels: labelNames}
}

// With returns the child counter for the given label values (one per
// label name, in order). Children are interned: the same values always
// return the same counter.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(renderLabels(v.labels, values)).c
}

// GaugeVec is a labelled gauge family.
type GaugeVec struct {
	f      *family
	labels []string
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, nil), labels: labelNames}
}

// With returns the child gauge for the given label values (one per label
// name, in order). Children are interned: the same values always return
// the same gauge.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(renderLabels(v.labels, values)).g
}

// HistogramVec is a labelled histogram family.
type HistogramVec struct {
	f      *family
	labels []string
}

// HistogramVec registers a histogram family; nil buckets selects
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, typeHistogram, buckets), labels: labelNames}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(renderLabels(v.labels, values)).h
}

// renderLabels builds the canonical `k="v",...` body for a label set.
func renderLabels(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("metrics: %d label values for %d names", len(values), len(names)))
	}
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatFloat renders a sample value; integral floats print without
// exponent so counters read naturally.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in the text exposition
// format (version 0.0.4): one # HELP and # TYPE line per family, then
// one line per series, with histogram buckets cumulative.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		children := make([]*series, len(order))
		for i, l := range order {
			children[i] = f.children[l]
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range children {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	suffix := func(labels string) string {
		if labels == "" {
			return ""
		}
		return "{" + labels + "}"
	}
	switch {
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, suffix(s.labels), formatFloat(s.fn()))
		return err
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, suffix(s.labels), s.c.Value())
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, suffix(s.labels), formatFloat(s.g.Value()))
		return err
	case s.h != nil:
		h := s.h
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			labels := s.labels
			if labels != "" {
				labels += ","
			}
			labels += `le="` + formatFloat(bound) + `"`
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.name, labels, cum); err != nil {
				return err
			}
		}
		// The +Inf bucket equals _count by construction; read the slot
		// rather than count so a concurrent Observe between loads cannot
		// make the cumulative series non-monotonic within one scrape.
		cum += h.counts[len(h.bounds)].Load()
		labels := s.labels
		if labels != "" {
			labels += ","
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, labels, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, suffix(s.labels),
			formatFloat(math.Float64frombits(h.sumBits.Load()))); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, suffix(s.labels), cum)
		return err
	}
	return nil
}
