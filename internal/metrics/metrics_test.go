package metrics

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// expose renders the registry to a string.
func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fhc_requests_total", "Total requests.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("fhc_in_flight", "In-flight requests.")
	g.Set(4)
	g.Add(-1)
	r.GaugeFunc("fhc_live", "Sampled at scrape.", func() float64 { return 7.5 })
	r.CounterFunc("fhc_sampled_total", "Counter sampled at scrape.", func() float64 { return 9 })

	out := expose(t, r)
	for _, want := range []string{
		"# HELP fhc_requests_total Total requests.",
		"# TYPE fhc_requests_total counter",
		"fhc_requests_total 3",
		"# TYPE fhc_in_flight gauge",
		"fhc_in_flight 3",
		"fhc_live 7.5",
		"fhc_sampled_total 9",
	} {
		if !strings.Contains(out, want+"\n") && !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecLabelsAndInterning(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("fhc_http_requests_total", "By route and code.", "route", "code")
	v.With("/v1/classify", "200").Inc()
	v.With("/v1/classify", "200").Inc()
	v.With("/v1/classify", "429").Inc()
	if got := v.With("/v1/classify", "200").Value(); got != 2 {
		t.Fatalf("interned child count = %d, want 2", got)
	}
	out := expose(t, r)
	if !strings.Contains(out, `fhc_http_requests_total{route="/v1/classify",code="200"} 2`) {
		t.Errorf("labelled series missing:\n%s", out)
	}
	if !strings.Contains(out, `fhc_http_requests_total{route="/v1/classify",code="429"} 1`) {
		t.Errorf("second labelled series missing:\n%s", out)
	}
	// One HELP/TYPE header for the whole family.
	if n := strings.Count(out, "# TYPE fhc_http_requests_total"); n != 1 {
		t.Errorf("family TYPE emitted %d times", n)
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("fhc_retrain_store_samples", "Training-store samples by class.", "class")
	v.With("Alpha").Set(12)
	v.With("Beta").Set(3)
	v.With("Alpha").Add(-2)
	if got := v.With("Alpha").Value(); got != 10 {
		t.Fatalf("interned child value = %g, want 10", got)
	}
	out := expose(t, r)
	for _, want := range []string{
		"# TYPE fhc_retrain_store_samples gauge",
		`fhc_retrain_store_samples{class="Alpha"} 10`,
		`fhc_retrain_store_samples{class="Beta"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("fhc_weird_total", "", "path")
	v.With("a\"b\\c\nd").Inc()
	out := expose(t, r)
	if !strings.Contains(out, `fhc_weird_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fhc_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	out := expose(t, r)
	for _, want := range []string{
		`fhc_latency_seconds_bucket{le="0.01"} 1`,
		`fhc_latency_seconds_bucket{le="0.1"} 3`,
		`fhc_latency_seconds_bucket{le="1"} 4`,
		`fhc_latency_seconds_bucket{le="+Inf"} 5`,
		`fhc_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
	// Sum = 5.605 up to float wobble.
	var sum float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "fhc_latency_seconds_sum") {
			f, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil {
				t.Fatalf("sum parse: %v", err)
			}
			sum = f
		}
	}
	if sum < 5.6 || sum > 5.61 {
		t.Errorf("histogram sum = %v, want ~5.605", sum)
	}
}

// TestHistogramBoundaryInclusive pins the le semantics: a value equal to
// a bound lands in that bound's bucket.
func TestHistogramBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fhc_b", "", []float64{1, 2})
	h.Observe(1)
	out := expose(t, r)
	if !strings.Contains(out, `fhc_b_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not in its bucket:\n%s", out)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("fhc_route_seconds", "", []float64{0.1}, "route")
	v.With("/healthz").Observe(0.05)
	v.With("/metrics").Observe(0.5)
	out := expose(t, r)
	for _, want := range []string{
		`fhc_route_seconds_bucket{route="/healthz",le="0.1"} 1`,
		`fhc_route_seconds_bucket{route="/metrics",le="+Inf"} 1`,
		`fhc_route_seconds_count{route="/metrics"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram vec missing %q:\n%s", want, out)
		}
	}
}

func TestReregisterSameNameReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("fhc_once_total", "")
	b := r.Counter("fhc_once_total", "")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch on reregistration did not panic")
		}
	}()
	r.Gauge("fhc_once_total", "")
}

// TestBeforeWriteSnapshotHook pins the one-snapshot-per-scrape
// mechanism: the hook runs once per WritePrometheus, before any series
// renders, so every function-backed series in one exposition reads the
// same captured state.
func TestBeforeWriteSnapshotHook(t *testing.T) {
	r := NewRegistry()
	calls := 0
	var captured float64
	r.BeforeWrite(func() { calls++; captured = float64(calls * 10) })
	r.GaugeFunc("fhc_snap_a", "", func() float64 { return captured })
	r.GaugeFunc("fhc_snap_b", "", func() float64 { return captured })

	out := expose(t, r)
	if calls != 1 {
		t.Fatalf("hook ran %d times in one scrape, want 1", calls)
	}
	if !strings.Contains(out, "fhc_snap_a 10") || !strings.Contains(out, "fhc_snap_b 10") {
		t.Fatalf("series disagree within one scrape:\n%s", out)
	}
	out = expose(t, r)
	if calls != 2 || !strings.Contains(out, "fhc_snap_a 20") {
		t.Fatalf("hook not re-run on second scrape (calls=%d):\n%s", calls, out)
	}
}

// TestConcurrentUpdatesAndScrapes exercises the registry under the race
// detector: writers on every instrument shape while scrapes render.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fhc_c_total", "")
	g := r.Gauge("fhc_g", "")
	h := r.Histogram("fhc_h_seconds", "", nil)
	v := r.CounterVec("fhc_v_total", "", "who")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 1000)
				v.With(strconv.Itoa(w % 3)).Inc()
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	out := expose(t, r)
	if !strings.Contains(out, "fhc_h_seconds_count 4000") {
		t.Errorf("histogram lost observations:\n%s", out)
	}
}
