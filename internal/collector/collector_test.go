package collector

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// binaries returns n distinct valid ELF binaries.
func binaries(t *testing.T, n int) [][]byte {
	t.Helper()
	c, err := synth.Generate([]synth.ClassSpec{{Name: "Coll", Samples: n}}, synth.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, 0, n)
	for i := range c.Samples {
		out = append(out, c.Samples[i].Binary)
	}
	if len(out) < n {
		t.Fatalf("only %d binaries generated", len(out))
	}
	return out[:n]
}

func TestCollectExtractsAndCaches(t *testing.T) {
	bins := binaries(t, 3)
	c := New(Options{})
	s1, hit, err := c.Collect("a.out", bins[0])
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first collection reported a cache hit")
	}
	if s1.Digests[0].IsZero() {
		t.Fatal("collected sample has no file digest")
	}
	// Same content, different name: cache hit, name updated.
	s2, hit, err := c.Collect("renamed.bin", bins[0])
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("repeat execution not recognised")
	}
	if s2.Exe != "renamed.bin" {
		t.Fatalf("exe = %q", s2.Exe)
	}
	if s2.SHA256 != s1.SHA256 || s2.Digests != s1.Digests {
		t.Fatal("cached sample features differ from original")
	}
	stats := c.Stats()
	if stats.Seen != 2 || stats.Unique != 1 || stats.CacheHits != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestCollectStream(t *testing.T) {
	bins := binaries(t, 2)
	c := New(Options{})
	s1, hit, err := c.CollectStream("a.out", bytes.NewReader(bins[0]), 0)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first streamed collection reported a cache hit")
	}
	// The streamed sample must match the buffered path exactly.
	want, err := dataset.FromBinary("", "", "a.out", bins[0])
	if err != nil {
		t.Fatal(err)
	}
	if s1 != want {
		t.Fatalf("streamed sample differs from buffered:\n got %+v\nwant %+v", s1, want)
	}
	// Same content streamed again: recognised as cached, name updated.
	s2, hit, err := c.CollectStream("renamed.bin", bytes.NewReader(bins[0]), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || s2.Exe != "renamed.bin" || s2.SHA256 != s1.SHA256 {
		t.Fatalf("repeat stream: hit=%v sample=%+v", hit, s2)
	}
	// Streaming and buffered collection share one cache.
	_, hit, err = c.Collect("a.out", bins[0])
	if err != nil || !hit {
		t.Fatalf("buffered collect after stream: hit=%v err=%v", hit, err)
	}
	if st := c.Stats(); st.Seen != 3 || st.Unique != 1 || st.CacheHits != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Non-ELF streams are rejected.
	if _, _, err := c.CollectStream("s.sh", strings.NewReader("#!/bin/sh\n"), 0); err == nil {
		t.Fatal("script accepted")
	}
}

func TestCollectStreamTruncatedNotCached(t *testing.T) {
	bins := binaries(t, 1)
	c := New(Options{})
	s, hit, err := c.CollectStream("big", bytes.NewReader(bins[0]), len(bins[0])/2)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("truncated stream reported cached")
	}
	if s.Digests[dataset.FeatureFile].IsZero() {
		t.Fatal("truncated stream lost the file digest")
	}
	if c.Known(bins[0]) {
		t.Fatal("truncated sample was cached")
	}
	// A later full collection produces and caches the complete sample.
	full, hit, err := c.CollectStream("big", bytes.NewReader(bins[0]), 0)
	if err != nil || hit {
		t.Fatalf("full re-stream: hit=%v err=%v", hit, err)
	}
	if full.Digests[dataset.FeatureSymbols].IsZero() {
		t.Fatal("full re-stream missing symbols digest")
	}
	if !c.Known(bins[0]) {
		t.Fatal("complete sample not cached")
	}
}

func TestCollectRejectsNonELF(t *testing.T) {
	c := New(Options{})
	if _, _, err := c.Collect("script.sh", []byte("#!/bin/sh\n")); err == nil {
		t.Fatal("script accepted")
	}
	if got := c.Stats().Unique; got != 0 {
		t.Fatalf("failed collection cached: %d unique", got)
	}
}

func TestEviction(t *testing.T) {
	bins := binaries(t, 4)
	c := New(Options{MaxEntries: 2})
	for _, b := range bins[:3] {
		if _, _, err := c.Collect("x", b); err != nil {
			t.Fatal(err)
		}
	}
	stats := c.Stats()
	if stats.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", stats.Evicted)
	}
	if c.Known(bins[0]) {
		t.Fatal("oldest entry still cached after eviction")
	}
	if !c.Known(bins[1]) || !c.Known(bins[2]) {
		t.Fatal("recent entries evicted")
	}
	// Re-collecting the evicted binary re-extracts it.
	_, hit, err := c.Collect("x", bins[0])
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("evicted binary served from cache")
	}
}

func TestConcurrentCollect(t *testing.T) {
	bins := binaries(t, 4)
	c := New(Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, _, err := c.Collect("x", bins[i%len(bins)]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	stats := c.Stats()
	if stats.Unique != len(bins) {
		t.Fatalf("unique = %d, want %d", stats.Unique, len(bins))
	}
	if stats.Seen != 160 {
		t.Fatalf("seen = %d, want 160", stats.Seen)
	}
	if stats.CacheHits != stats.Seen-stats.Unique {
		t.Fatalf("hit accounting off: %+v", stats)
	}
}

func TestKnown(t *testing.T) {
	bins := binaries(t, 1)
	c := New(Options{})
	if c.Known(bins[0]) {
		t.Fatal("empty collector knows a binary")
	}
	if _, _, err := c.Collect("x", bins[0]); err != nil {
		t.Fatal(err)
	}
	if !c.Known(bins[0]) {
		t.Fatal("collected binary not known")
	}
}

func TestRangeSnapshotsCachedSamples(t *testing.T) {
	bins := binaries(t, 3)
	c := New(Options{})
	for i, bin := range bins {
		if _, _, err := c.Collect(fmt.Sprintf("exe-%d", i), bin); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	c.Range(func(s *dataset.Sample) {
		seen[s.Exe] = true
		// Calling back into the collector must not deadlock.
		if !c.Known(bins[0]) {
			t.Error("Known failed inside Range")
		}
	})
	if len(seen) != 3 {
		t.Fatalf("Range visited %d samples, want 3: %v", len(seen), seen)
	}
}
