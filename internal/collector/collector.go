// Package collector implements the paper's envisioned data-collection
// mechanism: a scheduler prolog hook (the paper points at Yamamoto et
// al.'s Slurm prolog approach) that captures the executable of every job
// submission. Because "users frequently execute jobs by changing the
// input data and not the application executable" (§1), the collector
// first matches the binary's cryptographic hash against everything seen
// before; only genuinely new binaries pay for feature extraction. The
// paper's fuzzy classification then runs exclusively on the novel
// executables.
//
// The extraction cache is the same sharded LRU structure, under the same
// SHA-256 key, as the serving engine's prediction cache (package serve):
// one content digest, computed here, identifies the binary through
// extraction, classification and prediction reuse alike.
//
// Concurrency contract: a Collector is safe for concurrent Collect,
// Known and Stats calls from any number of scheduler hooks. Concurrent
// Collects of the same new binary may each pay extraction, but the
// cache insert is first-write-wins: every caller receives the winner's
// sample, so downstream layers never see two feature extractions of
// one content digest.
package collector

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/serve"
)

// Stats counts collector activity.
type Stats struct {
	// Seen is the number of Collect calls.
	Seen int
	// Unique is the number of distinct binaries extracted.
	Unique int
	// CacheHits counts repeated executions recognised by exact hash.
	CacheHits int
	// Evicted counts cache entries dropped to respect MaxEntries.
	Evicted int
}

// Options configures a Collector.
type Options struct {
	// MaxEntries bounds the extraction cache; 0 means unbounded. When
	// full, the least recently used entry is evicted (collection
	// daemons run for months).
	MaxEntries int
	// Workers bounds... extraction is per-call synchronous; concurrency
	// comes from callers. Reserved for future use.
	Workers int
}

// Collector deduplicates and extracts job executables. It is safe for
// concurrent use by many scheduler hooks.
type Collector struct {
	opt   Options
	cache *serve.Cache[*dataset.Sample]

	seen, unique, hits atomic.Int64
}

// New returns an empty collector.
func New(opt Options) *Collector {
	return &Collector{
		opt:   opt,
		cache: serve.NewCache[*dataset.Sample](opt.MaxEntries),
	}
}

// Collect ingests one observed execution of exe with the given binary
// content. It returns the extracted sample and whether it was served from
// the exact-hash cache. The sample's Class and Version are left empty:
// user-submitted binaries are unlabelled by definition — labelling them
// is the classifier's job.
func (c *Collector) Collect(exe string, bin []byte) (dataset.Sample, bool, error) {
	key := serve.KeyOf(bin)
	c.seen.Add(1)
	if cached, ok := c.cache.Get(key); ok {
		c.hits.Add(1)
		out := *cached
		out.Exe = exe // name may differ between executions; content rules
		return out, true, nil
	}

	// Extraction happens outside any lock: it is the expensive part and
	// distinct binaries extract independently.
	s, err := dataset.FromBinary("", "", exe, bin)
	if err != nil {
		return dataset.Sample{}, false, fmt.Errorf("collector: %w", err)
	}

	stored := s
	if winner, inserted := c.cache.Add(key, &stored); !inserted {
		// Another hook extracted the same binary concurrently.
		c.hits.Add(1)
		out := *winner
		out.Exe = exe
		return out, true, nil
	}
	c.unique.Add(1)
	return s, false, nil
}

// CollectStream ingests one observed execution whose binary content is
// streamed out of r: the streaming form of Collect, extracting features
// incrementally with O(1) memory (see dataset.FromReader; maxSpill
// bounds the ELF spill buffer, <= 0 selecting the default). The content
// key is the SHA-256 computed in the same single pass, so deduplication
// costs no extra read. Unlike Collect, a repeated binary still pays
// extraction — the key is only known once the stream has been consumed
// — but it is recognised afterwards and reported cached, keeping the
// Stats contract. Samples whose structural features were truncated by
// the spill bound are returned but not cached, so a later request with
// a higher bound (or the buffered path) can still produce the complete
// sample.
func (c *Collector) CollectStream(exe string, r io.Reader, maxSpill int) (dataset.Sample, bool, error) {
	c.seen.Add(1)
	s, info, err := dataset.FromReader("", "", exe, r, maxSpill)
	if err != nil {
		return dataset.Sample{}, false, fmt.Errorf("collector: %w", err)
	}
	key := serve.Key(s.SHA256)
	if cached, ok := c.cache.Get(key); ok {
		c.hits.Add(1)
		out := *cached
		out.Exe = exe
		return out, true, nil
	}
	if !info.Complete {
		return s, false, nil
	}
	stored := s
	if winner, inserted := c.cache.Add(key, &stored); !inserted {
		c.hits.Add(1)
		out := *winner
		out.Exe = exe
		return out, true, nil
	}
	c.unique.Add(1)
	return s, false, nil
}

// Stats returns a snapshot of the collector's counters.
func (c *Collector) Stats() Stats {
	return Stats{
		Seen:      int(c.seen.Load()),
		Unique:    int(c.unique.Load()),
		CacheHits: int(c.hits.Load()),
		Evicted:   int(c.cache.Evicted()),
	}
}

// Known reports whether a binary with this content is currently cached,
// without refreshing its recency.
func (c *Collector) Known(bin []byte) bool {
	return c.cache.Contains(serve.KeyOf(bin))
}

// Range calls fn for every currently cached sample, without refreshing
// recency. The iteration is a per-shard snapshot: samples collected or
// evicted while Range runs may or may not be visited, and fn may safely
// call back into the collector. The continuous-learning layer uses it to
// warm its training store from binaries the collector has already seen.
// fn must not mutate the sample; copy it first.
func (c *Collector) Range(fn func(s *dataset.Sample)) {
	c.cache.Range(func(_ serve.Key, s *dataset.Sample) { fn(s) })
}
