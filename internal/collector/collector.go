// Package collector implements the paper's envisioned data-collection
// mechanism: a scheduler prolog hook (the paper points at Yamamoto et
// al.'s Slurm prolog approach) that captures the executable of every job
// submission. Because "users frequently execute jobs by changing the
// input data and not the application executable" (§1), the collector
// first matches the binary's cryptographic hash against everything seen
// before; only genuinely new binaries pay for feature extraction. The
// paper's fuzzy classification then runs exclusively on the novel
// executables.
package collector

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"repro/internal/dataset"
)

// Stats counts collector activity.
type Stats struct {
	// Seen is the number of Collect calls.
	Seen int
	// Unique is the number of distinct binaries extracted.
	Unique int
	// CacheHits counts repeated executions recognised by exact hash.
	CacheHits int
	// Evicted counts cache entries dropped to respect MaxEntries.
	Evicted int
}

// Options configures a Collector.
type Options struct {
	// MaxEntries bounds the extraction cache; 0 means unbounded. When
	// full, the oldest entry is evicted (collection daemons run for
	// months).
	MaxEntries int
	// Workers bounds... extraction is per-call synchronous; concurrency
	// comes from callers. Reserved for future use.
	Workers int
}

// Collector deduplicates and extracts job executables. It is safe for
// concurrent use by many scheduler hooks.
type Collector struct {
	opt Options

	mu    sync.Mutex
	cache map[[sha256.Size]byte]*dataset.Sample
	order [][sha256.Size]byte // FIFO for eviction
	stats Stats
}

// New returns an empty collector.
func New(opt Options) *Collector {
	return &Collector{
		opt:   opt,
		cache: map[[sha256.Size]byte]*dataset.Sample{},
	}
}

// Collect ingests one observed execution of exe with the given binary
// content. It returns the extracted sample and whether it was served from
// the exact-hash cache. The sample's Class and Version are left empty:
// user-submitted binaries are unlabelled by definition — labelling them
// is the classifier's job.
func (c *Collector) Collect(exe string, bin []byte) (dataset.Sample, bool, error) {
	sum := sha256.Sum256(bin)

	c.mu.Lock()
	c.stats.Seen++
	if s, ok := c.cache[sum]; ok {
		c.stats.CacheHits++
		out := *s
		out.Exe = exe // name may differ between executions; content rules
		c.mu.Unlock()
		return out, true, nil
	}
	c.mu.Unlock()

	// Extraction happens outside the lock: it is the expensive part and
	// distinct binaries extract independently.
	s, err := dataset.FromBinary("", "", exe, bin)
	if err != nil {
		return dataset.Sample{}, false, fmt.Errorf("collector: %w", err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if cached, ok := c.cache[sum]; ok {
		// Another hook extracted the same binary concurrently.
		c.stats.CacheHits++
		out := *cached
		out.Exe = exe
		return out, true, nil
	}
	stored := s
	c.cache[sum] = &stored
	c.order = append(c.order, sum)
	c.stats.Unique++
	if c.opt.MaxEntries > 0 && len(c.cache) > c.opt.MaxEntries {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.cache, oldest)
		c.stats.Evicted++
	}
	return s, false, nil
}

// Stats returns a snapshot of the collector's counters.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Known reports whether a binary with this content was collected before.
func (c *Collector) Known(bin []byte) bool {
	sum := sha256.Sum256(bin)
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.cache[sum]
	return ok
}
