package collector

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dataset"
)

// failingReader yields a prefix then fails, like an upload cut mid-body.
type failingReader struct {
	data []byte
	err  error
}

func (r *failingReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestCollectStreamTruncatedNeverCached pins the cache-hygiene
// contract: a sample whose structural features were skipped because
// the stream exceeded the spill bound must never enter the extraction
// cache — otherwise one oversized upload would poison every later
// classification of the same binary with a feature-poor sample.
func TestCollectStreamTruncatedNeverCached(t *testing.T) {
	bin := binaries(t, 1)[0]
	c := New(Options{})

	s1, hit, err := c.CollectStream("big", bytes.NewReader(bin), 64)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first truncated collection reported a hit")
	}
	if !s1.Digests[dataset.FeatureSymbols].IsZero() {
		t.Fatal("truncated sample carries structural digests")
	}
	if c.Known(bin) {
		t.Fatal("truncated sample entered the extraction cache")
	}
	// A repeat truncated collection recomputes — still no hit, still
	// not cached.
	if _, hit, err = c.CollectStream("big", bytes.NewReader(bin), 64); err != nil || hit {
		t.Fatalf("repeat truncated collection: hit=%v err=%v", hit, err)
	}
	if got := c.Stats(); got.Unique != 0 || got.CacheHits != 0 || got.Seen != 2 {
		t.Fatalf("stats after truncated collections: %+v", got)
	}

	// The same binary collected completely is cached as usual, with the
	// full feature set — the truncated pass left no trace behind.
	full, hit, err := c.CollectStream("big", bytes.NewReader(bin), 0)
	if err != nil || hit {
		t.Fatalf("complete collection: hit=%v err=%v", hit, err)
	}
	if !c.Known(bin) {
		t.Fatal("complete sample missing from the extraction cache")
	}
	again, hit, err := c.CollectStream("big", bytes.NewReader(bin), 0)
	if err != nil || !hit {
		t.Fatalf("repeat complete collection: hit=%v err=%v", hit, err)
	}
	if again.SHA256 != full.SHA256 || again.Digests != full.Digests {
		t.Fatal("cached sample differs from the collected one")
	}

	// A truncated collection AFTER the complete one is a legitimate
	// cache hit — same content hash, full features already on file.
	fromCache, hit, err := c.CollectStream("big", bytes.NewReader(bin), 64)
	if err != nil || !hit {
		t.Fatalf("truncated re-collection of a cached binary: hit=%v err=%v", hit, err)
	}
	if fromCache.Digests != full.Digests {
		t.Fatal("cache hit served feature-poor sample")
	}
}

// TestCollectStreamMidStreamError: a stream that dies mid-body is an
// error, counts as seen, and caches nothing.
func TestCollectStreamMidStreamError(t *testing.T) {
	bin := binaries(t, 1)[0]
	c := New(Options{})
	broken := errors.New("peer reset")
	_, _, err := c.CollectStream("dying", &failingReader{data: bin[:100], err: broken}, 0)
	if !errors.Is(err, broken) {
		t.Fatalf("mid-stream error: %v", err)
	}
	if c.Known(bin) {
		t.Fatal("failed stream entered the extraction cache")
	}
	if got := c.Stats(); got.Seen != 1 || got.Unique != 0 {
		t.Fatalf("stats after failed stream: %+v", got)
	}
}
