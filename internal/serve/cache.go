package serve

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
)

// Key is the exact-content identity shared across the serving layers:
// the SHA-256 of the binary, as computed once by the collector and
// carried on dataset.Sample. The collector's extraction cache and the
// engine's prediction cache are keyed by the same value, so a repeated
// submission pays for one digest and skips both extraction and
// featurisation.
type Key = [sha256.Size]byte

// KeyOf returns the cache key of binary content.
func KeyOf(bin []byte) Key { return sha256.Sum256(bin) }

// SampleKey returns the cache key of an extracted sample, or ok=false
// when the sample carries no content digest (hand-built samples); such
// samples are still classified, just never cached or coalesced.
func SampleKey(s *dataset.Sample) (Key, bool) {
	return s.SHA256, s.SHA256 != (Key{})
}

// Shard-count heuristics: enough shards to keep lock contention low
// under concurrent serving, but never so many that a small capacity
// degenerates into one-entry shards with meaningless LRU order.
const (
	maxCacheShards     = 16
	minEntriesPerShard = 64
)

// Cache is a concurrency-safe, sharded, LRU-bounded map from content
// keys to values. Each shard has its own lock and recency list; keys
// spread over shards by their (uniformly distributed) leading digest
// byte. The capacity bound is enforced per shard, so it is exact for
// small caches (which collapse to one shard) and approximate within a
// shard's share for large ones.
type Cache[V any] struct {
	shards   []cacheShard[V]
	perShard int // max entries per shard; 0 = unbounded
	evicted  *atomic.Uint64
}

type cacheShard[V any] struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry[V any] struct {
	key Key
	val V
}

// NewCache builds a cache holding at most capacity entries;
// capacity <= 0 means unbounded.
func NewCache[V any](capacity int) *Cache[V] {
	return NewCacheCounted[V](capacity, nil)
}

// NewCacheCounted builds a cache whose evictions increment an external
// counter, letting an owner that replaces caches wholesale (the serving
// engine's epoch swap) keep one exact, monotonic eviction total even
// when a retired cache takes straggler inserts. A nil counter gives the
// cache its own.
func NewCacheCounted[V any](capacity int, evicted *atomic.Uint64) *Cache[V] {
	shards := maxCacheShards
	if capacity > 0 {
		if s := capacity / minEntriesPerShard; s < shards {
			shards = s
		}
		if shards < 1 {
			shards = 1
		}
	}
	if evicted == nil {
		evicted = &atomic.Uint64{}
	}
	c := &Cache[V]{shards: make([]cacheShard[V], shards), evicted: evicted}
	if capacity > 0 {
		c.perShard = (capacity + shards - 1) / shards
	}
	for i := range c.shards {
		c.shards[i].entries = map[Key]*list.Element{}
		c.shards[i].order = list.New()
	}
	return c
}

func (c *Cache[V]) shard(k Key) *cacheShard[V] {
	return &c.shards[int(k[0])%len(c.shards)]
}

// Get returns the cached value and marks it most recently used.
//
// fhc:hotpath
func (c *Cache[V]) Get(k Key) (V, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*cacheEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Contains reports presence without touching recency — a peek, for
// callers like Collector.Known that must not promote the entry.
func (c *Cache[V]) Contains(k Key) bool {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[k]
	return ok
}

// Add inserts the value unless the key is already present. It returns
// the value that ended up cached and whether this call inserted it;
// when inserted=false the returned value is the concurrent winner's,
// letting racing callers converge on one entry. A full shard evicts its
// least recently used entry.
//
// fhc:hotpath
func (c *Cache[V]) Add(k Key, v V) (V, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*cacheEntry[V]).val, false
	}
	s.entries[k] = s.order.PushFront(&cacheEntry[V]{key: k, val: v})
	if c.perShard > 0 && s.order.Len() > c.perShard {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry[V]).key)
		c.evicted.Add(1)
	}
	return v, true
}

// Range calls fn for every cached entry without touching recency. Each
// shard is snapshotted under its lock and fn runs outside all locks, so
// fn may safely call back into the cache; entries added or evicted while
// Range runs may or may not be visited. Iteration order is unspecified.
func (c *Cache[V]) Range(fn func(k Key, v V)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		snap := make([]*cacheEntry[V], 0, s.order.Len())
		for el := s.order.Front(); el != nil; el = el.Next() {
			snap = append(snap, el.Value.(*cacheEntry[V]))
		}
		s.mu.Unlock()
		for _, e := range snap {
			fn(e.key, e.val)
		}
	}
}

// Len returns the current number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].order.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}

// Evicted returns the number of entries dropped to respect the bound.
func (c *Cache[V]) Evicted() uint64 { return c.evicted.Load() }
