package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rf"
	"repro/internal/synth"
)

// fakeBackend is a recording Backend whose "probability" derives from
// the sample digest, making predictions deterministic without training.
type fakeBackend struct {
	gate    chan struct{} // when non-nil, PredictProbaBatch blocks on it
	entered chan int      // when non-nil, receives len(samples) on entry

	mu         sync.Mutex
	batchSizes []int
	samples    int
}

func (f *fakeBackend) PredictProbaBatch(samples []dataset.Sample) [][]float64 {
	if f.entered != nil {
		f.entered <- len(samples)
	}
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	f.batchSizes = append(f.batchSizes, len(samples))
	f.samples += len(samples)
	f.mu.Unlock()
	out := make([][]float64, len(samples))
	for i := range samples {
		out[i] = []float64{float64(samples[i].SHA256[1]) / 255}
	}
	return out
}

func (f *fakeBackend) PredictFromProba(proba []float64) core.Prediction {
	return core.Prediction{Label: "L", Class: "L", Confidence: proba[0]}
}

func (f *fakeBackend) classified() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.samples
}

// keyedSample builds a sample whose content digest is synthesised from
// id; distinct ids never collide on the cache key.
func keyedSample(id byte) dataset.Sample {
	s := dataset.Sample{Exe: fmt.Sprintf("exe-%d", id)}
	s.SHA256[0] = id // shard selector
	s.SHA256[1] = id // fake confidence source
	s.SHA256[2] = 1  // keep the key non-zero even for id 0
	return s
}

func TestEngineCacheHitMiss(t *testing.T) {
	fb := &fakeBackend{}
	e := New(fb, Options{BatchSize: 1})
	defer e.Close()

	a, b := keyedSample(1), keyedSample(2)
	p1 := e.Classify(&a)
	p2 := e.Classify(&a)
	e.Classify(&b)
	if p1 != p2 {
		t.Fatalf("cached prediction differs: %+v vs %+v", p1, p2)
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
	if got := fb.classified(); got != 2 {
		t.Fatalf("backend classified %d samples, want 2", got)
	}
	if st.CacheEntries != 2 {
		t.Fatalf("cache holds %d entries, want 2", st.CacheEntries)
	}
}

func TestEngineLookup(t *testing.T) {
	fb := &fakeBackend{}
	e := New(fb, Options{BatchSize: 1})
	defer e.Close()

	a := keyedSample(1)
	key, _ := SampleKey(&a)
	if _, ok := e.Lookup(key); ok {
		t.Fatal("Lookup hit before anything was classified")
	}
	if st := e.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Lookup miss moved counters: %+v", st)
	}
	want := e.Classify(&a)
	got, ok := e.Lookup(key)
	if !ok || got != want {
		t.Fatalf("Lookup after classify: ok=%v pred=%+v, want %+v", ok, got, want)
	}
	if st := e.Stats(); st.Hits != 1 {
		t.Fatalf("Lookup hit not counted: %+v", st)
	}
	if got := fb.classified(); got != 1 {
		t.Fatalf("Lookup reached the backend: %d samples classified", got)
	}
	// A swap orphans the cache: the hash-first probe must miss until the
	// new model has classified the binary.
	e.Swap(fb)
	if _, ok := e.Lookup(key); ok {
		t.Fatal("Lookup served a prediction cached under a retired model")
	}
	// Lookup is allocation-free on both outcomes.
	miss := keyedSample(9)
	missKey, _ := SampleKey(&miss)
	e.Classify(&a)
	if allocs := testing.AllocsPerRun(100, func() {
		e.Lookup(key)
		e.Lookup(missKey)
	}); allocs != 0 {
		t.Fatalf("Lookup allocates %v times per probe pair", allocs)
	}
}

func TestEngineLookupCacheDisabled(t *testing.T) {
	fb := &fakeBackend{}
	e := New(fb, Options{BatchSize: 1, CacheEntries: -1})
	defer e.Close()
	a := keyedSample(1)
	e.Classify(&a)
	key, _ := SampleKey(&a)
	if _, ok := e.Lookup(key); ok {
		t.Fatal("Lookup hit with caching disabled")
	}
}

func TestEngineLRUEviction(t *testing.T) {
	fb := &fakeBackend{}
	e := New(fb, Options{BatchSize: 1, CacheEntries: 2})
	defer e.Close()

	a, b, c := keyedSample(1), keyedSample(2), keyedSample(3)
	e.Classify(&a)
	e.Classify(&b)
	e.Classify(&c) // evicts a, the least recently used
	e.Classify(&a) // must re-classify
	st := e.Stats()
	if st.Evicted == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	if st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 4 misses (evicted entry re-classified)", st)
	}
	if got := fb.classified(); got != 4 {
		t.Fatalf("backend classified %d samples, want 4", got)
	}
}

func TestEngineInflightCoalescing(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	e := New(fb, Options{BatchSize: 1})
	defer e.Close()

	const waiters = 8
	s := keyedSample(9)
	preds := make([]core.Prediction, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local := s
			preds[i] = e.Classify(&local)
		}(i)
	}
	// Wait until one owner is blocked in the backend and everyone else
	// has coalesced onto its flight, then release the gate.
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().Coalesced != waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("coalescing never converged: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(fb.gate)
	wg.Wait()

	if got := fb.classified(); got != 1 {
		t.Fatalf("backend classified %d samples, want 1 (coalesced)", got)
	}
	for i := 1; i < waiters; i++ {
		if preds[i] != preds[0] {
			t.Fatalf("waiter %d got %+v, owner got %+v", i, preds[i], preds[0])
		}
	}
	st := e.Stats()
	if st.Misses != 1 || st.Coalesced != waiters-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d coalesced", st, waiters-1)
	}
}

// occupyExecutor parks one classification inside the gated backend so
// the engine's only executor is busy and later requests must window up.
// It returns after the backend has entered.
func occupyExecutor(e *Engine, fb *fakeBackend, wg *sync.WaitGroup, id byte) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := keyedSample(id)
		e.Classify(&s)
	}()
	<-fb.entered
}

// waitForMisses polls until n requests have passed the cache and entered
// the batching pipeline.
func waitForMisses(t *testing.T, e *Engine, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().Misses < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests entered the pipeline", e.Stats().Misses, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEngineBatchFlushOnSize(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{}), entered: make(chan int, 8)}
	// The executor is busy and the deadline far away: the second window
	// can only close by filling to BatchSize.
	e := New(fb, Options{BatchSize: 8, MaxLatency: time.Minute, Workers: 1})
	defer e.Close()

	var wg sync.WaitGroup
	occupyExecutor(e, fb, &wg, 9)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := keyedSample(byte(10 + i))
			e.Classify(&s)
		}(i)
	}
	waitForMisses(t, e, 9)
	// Give the dispatcher a beat to pull the queued 8 into its window;
	// only the size bound can release it (deadline is a minute away).
	time.Sleep(50 * time.Millisecond)
	close(fb.gate)
	wg.Wait()
	st := e.Stats()
	if st.Batches != 2 || st.MaxBatch != 8 || st.BatchedSamples != 9 {
		t.Fatalf("stats = %+v, want the occupier plus one full window of 8", st)
	}
}

func TestEngineBatchFlushOnDeadline(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{}), entered: make(chan int, 8)}
	// The executor is busy and the window can never fill: only the
	// latency bound can seal it.
	const maxLatency = 50 * time.Millisecond
	e := New(fb, Options{BatchSize: 1024, MaxLatency: maxLatency, Workers: 1})
	defer e.Close()

	var wg sync.WaitGroup
	occupyExecutor(e, fb, &wg, 19)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := keyedSample(byte(20 + i))
			e.Classify(&s)
		}(i)
	}
	waitForMisses(t, e, 4)
	// Far past the latency bound the window of 3 must be sealed; a
	// straggler arriving now must start the next window instead.
	time.Sleep(10 * maxLatency)
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := keyedSample(24)
		e.Classify(&s)
	}()
	waitForMisses(t, e, 5)
	close(fb.gate)
	wg.Wait()
	st := e.Stats()
	if st.Batches != 3 || st.MaxBatch != 3 || st.BatchedSamples != 5 {
		t.Fatalf("stats = %+v, want windows of 1 (occupier), 3 (deadline-sealed) and 1 (straggler)", st)
	}
}

func TestEngineUnkeyedSamplesBypassCache(t *testing.T) {
	fb := &fakeBackend{}
	e := New(fb, Options{BatchSize: 1})
	defer e.Close()

	s := dataset.Sample{Exe: "no-digest"} // zero SHA256
	e.Classify(&s)
	e.Classify(&s)
	if got := fb.classified(); got != 2 {
		t.Fatalf("unkeyed sample classified %d times, want 2 (no caching)", got)
	}
	if st := e.Stats(); st.Hits != 0 || st.CacheEntries != 0 {
		t.Fatalf("unkeyed sample entered the cache: %+v", st)
	}
}

func TestEngineClassifyAfterClose(t *testing.T) {
	fb := &fakeBackend{}
	e := New(fb, Options{BatchSize: 4})
	s := keyedSample(30)
	e.Classify(&s)
	e.Close()
	e.Close() // idempotent
	s2 := keyedSample(31)
	if p := e.Classify(&s2); p.Label != "L" {
		t.Fatalf("post-Close prediction = %+v", p)
	}
	if got := fb.classified(); got != 2 {
		t.Fatalf("backend classified %d samples, want 2", got)
	}
}

// --- Real-classifier tests -------------------------------------------

var (
	realOnce    sync.Once
	realClf     *core.Classifier
	realSamples []dataset.Sample
	realErr     error
)

// realClassifier trains one small classifier shared by the differential
// and race tests.
func realClassifier(t *testing.T) (*core.Classifier, []dataset.Sample) {
	t.Helper()
	realOnce.Do(func() {
		corpus, err := synth.Generate([]synth.ClassSpec{
			{Name: "Alpha", Samples: 10},
			{Name: "Beta", Samples: 10},
			{Name: "Gamma", Samples: 10},
		}, synth.Options{Seed: 7})
		if err != nil {
			realErr = err
			return
		}
		samples, err := dataset.FromCorpus(corpus, 0)
		if err != nil {
			realErr = err
			return
		}
		clf, err := core.Train(samples, core.Config{
			Threshold: 0.5,
			Seed:      11,
			Forest:    rf.Params{NumTrees: 40},
		})
		if err != nil {
			realErr = err
			return
		}
		realClf, realSamples = clf, samples
	})
	if realErr != nil {
		t.Fatal(realErr)
	}
	return realClf, realSamples
}

// TestEngineDifferential is the acceptance gate: for a stream with
// duplicates, engine output must be bit-identical — labels, closest
// classes and confidences — to sequential Classifier.Classify.
func TestEngineDifferential(t *testing.T) {
	clf, samples := realClassifier(t)
	// A stream with heavy duplication, out of class order.
	var stream []dataset.Sample
	for round := 0; round < 3; round++ {
		for i := range samples {
			stream = append(stream, samples[(i*7+round)%len(samples)])
		}
	}

	want := make([]core.Prediction, len(stream))
	for i := range stream {
		want[i] = clf.Classify(&stream[i])
	}

	for _, opt := range []Options{
		{},                              // defaults: cache + coalescing on
		{CacheEntries: -1},              // cache disabled: everything batches
		{BatchSize: 3, CacheEntries: 8}, // tiny windows, evicting cache
	} {
		e := New(clf, opt)
		got := e.ClassifyAll(stream)
		e.Close()
		for i := range stream {
			if got[i] != want[i] {
				t.Fatalf("opts %+v sample %d: engine %+v, direct %+v", opt, i, got[i], want[i])
			}
		}
	}
}

// TestEngineServesWhileRetuning drives concurrent classification against
// concurrent SetThreshold/SetBruteForceFeaturize calls; run under -race
// this is the regression test for the unsynchronised-retune hazard.
func TestEngineServesWhileRetuning(t *testing.T) {
	clf, samples := realClassifier(t)
	e := New(clf, Options{BatchSize: 4, CacheEntries: -1})
	defer e.Close()

	stop := make(chan struct{})
	var tuners sync.WaitGroup
	tuners.Add(1)
	go func() {
		defer tuners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			clf.SetThreshold(float64(i%10) / 10)
			clf.SetBruteForceFeaturize(i%2 == 0)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				s := samples[(w*25+i)%len(samples)]
				pred := e.Classify(&s)
				if pred.Class == "" {
					t.Error("empty prediction under concurrent retuning")
					return
				}
				_ = e.Stats()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	tuners.Wait()
	clf.SetBruteForceFeaturize(false)
	clf.SetThreshold(0.5)
}
