package serve

import (
	"sync"
	"testing"

	"repro/internal/dataset"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	k[31] = b
	return k
}

func TestCacheAddGet(t *testing.T) {
	c := NewCache[int](0)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("empty cache returned a value")
	}
	if v, inserted := c.Add(key(1), 10); !inserted || v != 10 {
		t.Fatalf("Add = (%d, %v), want (10, true)", v, inserted)
	}
	// A second Add must lose to the existing entry.
	if v, inserted := c.Add(key(1), 99); inserted || v != 10 {
		t.Fatalf("racing Add = (%d, %v), want (10, false)", v, inserted)
	}
	if v, ok := c.Get(key(1)); !ok || v != 10 {
		t.Fatalf("Get = (%d, %v), want (10, true)", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := NewCache[int](2) // small capacity collapses to one shard
	c.Add(key(1), 1)
	c.Add(key(2), 2)
	c.Get(key(1)) // promote 1; 2 becomes the LRU entry
	c.Add(key(3), 3)
	if c.Contains(key(2)) {
		t.Fatal("LRU entry survived eviction")
	}
	if !c.Contains(key(1)) || !c.Contains(key(3)) {
		t.Fatal("recently used entries evicted")
	}
	if c.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", c.Evicted())
	}
}

func TestCacheContainsDoesNotPromote(t *testing.T) {
	c := NewCache[int](2)
	c.Add(key(1), 1)
	c.Add(key(2), 2)
	c.Contains(key(1)) // a peek: 1 must stay the LRU entry
	c.Add(key(3), 3)
	if c.Contains(key(1)) {
		t.Fatal("Contains promoted the entry it peeked at")
	}
}

func TestCacheSharding(t *testing.T) {
	c := NewCache[int](maxCacheShards * minEntriesPerShard)
	if len(c.shards) != maxCacheShards {
		t.Fatalf("shards = %d, want %d", len(c.shards), maxCacheShards)
	}
	// Keys differing in the leading byte land on different shards but
	// remain individually retrievable.
	for b := 0; b < 255; b++ {
		c.Add(key(byte(b)), b)
	}
	for b := 0; b < 255; b++ {
		if v, ok := c.Get(key(byte(b))); !ok || v != b {
			t.Fatalf("key %d: Get = (%d, %v)", b, v, ok)
		}
	}
	if c.Len() != 255 {
		t.Fatalf("Len = %d, want 255", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache[int](128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := key(byte(i % 200))
				if v, ok := c.Get(k); ok && v != i%200 {
					t.Errorf("key %d holds %d", i%200, v)
					return
				}
				c.Add(k, i%200)
			}
		}(w)
	}
	wg.Wait()
}

func TestSampleKey(t *testing.T) {
	if _, ok := SampleKey(&dataset.Sample{}); ok {
		t.Fatal("zero-digest sample produced a key")
	}
	bin := []byte("not really elf, key only")
	s := dataset.Sample{SHA256: KeyOf(bin)}
	k, ok := SampleKey(&s)
	if !ok || k != KeyOf(bin) {
		t.Fatal("sample key does not round-trip the content digest")
	}
}
