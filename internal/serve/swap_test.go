package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rf"
)

// generationBackend is a Backend whose outputs carry its generation id,
// making a blended request — probabilities from one generation,
// thresholding from another — detectable at the point it would happen.
type generationBackend struct {
	id     float64
	blends atomic.Uint64
}

func (g *generationBackend) PredictProbaBatch(samples []dataset.Sample) [][]float64 {
	out := make([][]float64, len(samples))
	for i := range samples {
		out[i] = []float64{g.id, float64(samples[i].SHA256[1]) / 255}
	}
	return out
}

func (g *generationBackend) PredictFromProba(proba []float64) core.Prediction {
	if proba[0] != g.id {
		g.blends.Add(1)
	}
	return core.Prediction{
		Label:      fmt.Sprintf("gen-%.0f", g.id),
		Class:      fmt.Sprintf("gen-%.0f", g.id),
		Confidence: proba[1],
	}
}

// TestEngineSwapUnderLoad floods the engine from many goroutines while
// the backend is hot-swapped, asserting the zero-downtime contract: no
// request is dropped, every request is answered entirely by one
// generation, and any request issued after Swap returns — including
// requests whose key was cached under the old model — is answered by
// the new generation. Run under -race this is also the data-race gate
// for the epoch machinery.
func TestEngineSwapUnderLoad(t *testing.T) {
	oldB := &generationBackend{id: 1}
	newB := &generationBackend{id: 2}
	e := New(oldB, Options{BatchSize: 4})
	defer e.Close()

	// Prime the cache under the old model so stale-hit leaks would show.
	for id := byte(1); id <= 16; id++ {
		s := keyedSample(id)
		if p := e.Classify(&s); p.Label != "gen-1" {
			t.Fatalf("pre-swap prediction %+v", p)
		}
	}

	var swapped atomic.Bool
	var postSwapOld, badLabel atomic.Uint64
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				s := keyedSample(byte((w*iters + i) % 32)) // heavy duplication
				after := swapped.Load()
				p := e.Classify(&s)
				switch p.Label {
				case "gen-1":
					if after {
						postSwapOld.Add(1)
					}
				case "gen-2":
				default:
					badLabel.Add(1)
				}
			}
		}(w)
	}
	close(start)
	// Swap mid-flood. The flag flips only after Swap returns: requests
	// observed to start after it must be served by the new generation.
	e.Swap(newB)
	swapped.Store(true)
	wg.Wait()

	if n := postSwapOld.Load(); n != 0 {
		t.Fatalf("%d requests issued after Swap returned were answered by the old model", n)
	}
	if n := badLabel.Load(); n != 0 {
		t.Fatalf("%d requests produced neither generation's label", n)
	}
	if n := oldB.blends.Load() + newB.blends.Load(); n != 0 {
		t.Fatalf("%d requests blended two model generations", n)
	}
	st := e.Stats()
	if st.Swaps != 1 {
		t.Fatalf("stats.Swaps = %d, want 1", st.Swaps)
	}
	if got := st.Hits + st.Misses + st.Coalesced; got != workers*iters+16 {
		t.Fatalf("request accounting: hits+misses+coalesced = %d, want %d (none dropped)",
			got, workers*iters+16)
	}
}

// TestEngineSwapEpochsCache pins the epoch semantics precisely: an
// exact key cached under the old model must be re-classified — not
// served stale — after the swap, even though its digest is unchanged.
func TestEngineSwapEpochsCache(t *testing.T) {
	oldB := &generationBackend{id: 1}
	newB := &generationBackend{id: 2}
	e := New(oldB, Options{BatchSize: 1})
	defer e.Close()

	s := keyedSample(7)
	if p := e.Classify(&s); p.Label != "gen-1" {
		t.Fatalf("pre-swap: %+v", p)
	}
	if p := e.Classify(&s); p.Label != "gen-1" {
		t.Fatalf("pre-swap cached: %+v", p)
	}
	if st := e.Stats(); st.Hits != 1 {
		t.Fatalf("key not cached before swap: %+v", st)
	}
	e.Swap(newB)
	if p := e.Classify(&s); p.Label != "gen-2" {
		t.Fatalf("post-swap prediction %+v: stale cache entry served across the swap", p)
	}
	st := e.Stats()
	if st.Misses != 2 {
		t.Fatalf("stats = %+v, want the swapped key re-classified (2 misses)", st)
	}
	if st.CacheEntries != 1 {
		t.Fatalf("new epoch cache holds %d entries, want 1", st.CacheEntries)
	}
}

// TestEngineSwapNoCache covers the cache-disabled configuration, where
// epochs still isolate the backend and the coalescing map.
func TestEngineSwapNoCache(t *testing.T) {
	oldB := &generationBackend{id: 1}
	newB := &generationBackend{id: 2}
	e := New(oldB, Options{BatchSize: 1, CacheEntries: -1})
	defer e.Close()
	s := keyedSample(3)
	if p := e.Classify(&s); p.Label != "gen-1" {
		t.Fatalf("pre-swap: %+v", p)
	}
	e.Swap(newB)
	e.Swap(oldB)
	e.Swap(newB)
	if p := e.Classify(&s); p.Label != "gen-2" {
		t.Fatalf("post-swap: %+v", p)
	}
	if st := e.Stats(); st.Swaps != 3 {
		t.Fatalf("stats.Swaps = %d, want 3", st.Swaps)
	}
}

// TestEngineSwapDifferential is the real-classifier acceptance gate:
// after swapping in a retrained model, engine output is bit-identical
// to calling the new classifier directly — on a cache primed entirely
// by the old model.
func TestEngineSwapDifferential(t *testing.T) {
	clf, samples := realClassifier(t)
	retrained, err := core.Train(samples, core.Config{
		Threshold: 0.3,
		Seed:      29,
		Forest:    rf.Params{NumTrees: 25},
	})
	if err != nil {
		t.Fatal(err)
	}

	e := New(clf, Options{BatchSize: 8})
	defer e.Close()
	before := e.ClassifyAll(samples) // primes the old epoch's cache
	for i := range samples {
		if want := clf.Classify(&samples[i]); before[i] != want {
			t.Fatalf("pre-swap sample %d: engine %+v, direct %+v", i, before[i], want)
		}
	}

	e.Swap(retrained)
	after := e.ClassifyAll(samples)
	for i := range samples {
		if want := retrained.Classify(&samples[i]); after[i] != want {
			t.Fatalf("post-swap sample %d: engine %+v, retrained direct %+v", i, after[i], want)
		}
	}
	if st := e.Stats(); st.Swaps != 1 {
		t.Fatalf("stats.Swaps = %d, want 1", st.Swaps)
	}
}
