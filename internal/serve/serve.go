// Package serve turns the one-sample Classify path into an always-on
// classification engine shaped for the paper's Figure 1 deployment: a
// Slurm prolog submits every observed executable, and "users frequently
// execute jobs by changing the input data and not the application
// executable" (§1), so repeated submissions of identical binaries are
// the common case and concurrent submissions arrive in bursts.
//
// The engine fronts a trained classifier with two layers:
//
//   - an exact-hash prediction cache (sharded, LRU-bounded, keyed by the
//     sample's SHA-256) so duplicate submissions skip featurisation and
//     the forest entirely, with in-flight coalescing so N concurrent
//     submissions of one new binary pay for one featurisation;
//   - a micro-batcher that gathers concurrent cache misses into
//     size- and latency-bounded windows and runs them through the
//     classifier's featurizeBatch/PredictProbaBatch path, amortising
//     worker-pool start-up over the window.
//
// Predictions are bit-identical to calling Classifier.Classify directly:
// batching changes scheduling, never arithmetic.
//
// Retrain-and-redeploy is first class: Swap atomically installs a new
// backend without stopping the engine. The cache, the coalescing map and
// the backend are grouped into one epoch that is replaced wholesale, so
// a prediction cached under the old model can never answer a request
// issued after the swap, and every request is answered entirely by one
// model — never a featurise-here, threshold-there blend.
//
// Concurrency contract: every Engine method — Classify, ClassifyAll,
// Swap, Stats, Close — is safe to call from any number of goroutines
// simultaneously; Close is idempotent, and Classify after Close degrades
// to direct unbatched classification rather than failing. The Backend
// handed to New/Swap must itself tolerate concurrent PredictProbaBatch
// calls (up to Options.Workers windows execute at once).
package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Backend is the narrow classifier surface the engine serves:
// batch probability prediction plus per-sample thresholding.
// *core.Classifier satisfies it.
type Backend interface {
	// PredictProbaBatch featurises samples and returns one probability
	// vector per sample, in model class order.
	PredictProbaBatch(samples []dataset.Sample) [][]float64
	// PredictFromProba applies the confidence threshold to one vector.
	PredictFromProba(proba []float64) core.Prediction
}

// Options configures an Engine. The zero value selects serving defaults.
type Options struct {
	// BatchSize caps a micro-batch window; a window is dispatched as
	// soon as it fills. Default 64.
	BatchSize int
	// MaxLatency bounds how long a partial window lingers for
	// stragglers once every executor is busy. The dispatcher is
	// work-conserving: with an idle executor a drained queue dispatches
	// immediately, so lone requests never pay the latency bound.
	// Default 2ms.
	MaxLatency time.Duration
	// Workers bounds how many windows execute concurrently.
	// Default GOMAXPROCS.
	Workers int
	// CacheEntries bounds the prediction cache. 0 selects the default
	// (65536 entries); negative disables caching and coalescing.
	CacheEntries int
	// QueueDepth is the pending-request buffer between callers and the
	// batcher. Default 4x BatchSize.
	QueueDepth int
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.MaxLatency <= 0 {
		o.MaxLatency = 2 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 65536
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.BatchSize
	}
	return o
}

// Stats is a snapshot of engine activity.
type Stats struct {
	// Hits counts predictions served from the exact-hash cache.
	Hits uint64
	// Misses counts predictions that went through the classifier.
	Misses uint64
	// Coalesced counts requests that piggybacked on an in-flight
	// classification of the same binary instead of featurising again.
	Coalesced uint64
	// Evicted counts cache entries dropped to respect the LRU bound,
	// summed over all epochs.
	Evicted uint64
	// Swaps counts backend hot-swaps.
	Swaps uint64
	// Batches and BatchedSamples describe the dispatched windows;
	// MaxBatch is the largest window observed.
	Batches, BatchedSamples, MaxBatch uint64
	// CacheEntries is the current epoch's prediction-cache population.
	CacheEntries int
	// Inflight is the current epoch's count of coalescing entries:
	// distinct new binaries being featurised right now.
	Inflight int
}

// request is one enqueued classification.
type request struct {
	sample *dataset.Sample
	out    chan core.Prediction
}

// flight is an in-progress classification other callers may wait on.
type flight struct {
	done chan struct{}
	pred core.Prediction
}

// epoch groups the serving state that must change together on a model
// swap: the backend plus the prediction cache and coalescing map built
// over that backend's outputs. Classify captures one epoch pointer and
// uses it throughout, so a request's cache bookkeeping can never cross
// model generations; Swap replaces the whole epoch atomically, instantly
// orphaning every prediction cached under the previous model.
type epoch struct {
	backend Backend
	cache   *Cache[core.Prediction] // nil when disabled

	inflightMu sync.Mutex
	inflight   map[Key]*flight
}

// Engine is a concurrency-safe serving front for a classifier.
// Create with New, release with Close.
type Engine struct {
	opt   Options
	state atomic.Pointer[epoch]

	// swapMu is held shared for the whole execute-and-deliver span of a
	// batch and exclusively by Swap: acquiring the write lock drains
	// every in-flight window, so after Swap returns no prediction
	// computed by the previous backend is still undelivered.
	swapMu sync.RWMutex

	queue  chan *request
	sem    chan struct{} // bounds concurrent window executions
	loopWG sync.WaitGroup

	sendMu sync.RWMutex // guards queue sends against Close
	closed bool

	closeOnce sync.Once

	hits, misses, coalesced       atomic.Uint64
	batches, batchedSamples, maxB atomic.Uint64
	swaps                         atomic.Uint64
	// cacheEvicted is shared by every epoch's cache, so Stats.Evicted
	// stays exact across swaps even when a retired cache takes straggler
	// inserts after its epoch ended.
	cacheEvicted atomic.Uint64
}

// newEpoch builds a fresh epoch over a backend.
func (e *Engine) newEpoch(backend Backend) *epoch {
	ep := &epoch{backend: backend, inflight: map[Key]*flight{}}
	if e.opt.CacheEntries > 0 {
		ep.cache = NewCacheCounted[core.Prediction](e.opt.CacheEntries, &e.cacheEvicted)
	}
	return ep
}

// New starts an engine over a backend. The caller owns the backend;
// retuning it (SetThreshold, SetBruteForceFeaturize on a classifier)
// while the engine serves is safe, but predictions cached before a
// threshold change keep their old labels — Swap in a fresh backend (or
// the same one) when relabelling history matters.
func New(backend Backend, opt Options) *Engine {
	opt = opt.withDefaults()
	e := &Engine{
		opt:   opt,
		queue: make(chan *request, opt.QueueDepth),
		sem:   make(chan struct{}, opt.Workers),
	}
	e.state.Store(e.newEpoch(backend))
	e.loopWG.Add(1)
	go e.dispatch()
	return e
}

// Swap atomically replaces the serving backend with zero downtime:
// concurrent Classify calls keep flowing, none is dropped, and each is
// answered entirely by one backend. Swap installs a fresh epoch — new
// cache, new coalescing map — and then waits for every window still
// executing on the previous backend to deliver, so when Swap returns:
//
//   - every subsequently delivered prediction was computed by the new
//     backend (or a newer one);
//   - no prediction cached under the previous model can ever be served
//     again — the old cache is orphaned wholesale, not invalidated
//     entry by entry.
//
// The old backend is released to the garbage collector once its last
// straggler delivers. Swap is safe to call concurrently with Classify,
// Close and other Swaps.
func (e *Engine) Swap(backend Backend) {
	ns := e.newEpoch(backend)
	e.swapMu.Lock()
	e.state.Store(ns)
	e.swapMu.Unlock()
	e.swaps.Add(1)
}

// Classify predicts one sample, blocking until the prediction is
// available. Duplicate submissions (by content digest) are served from
// the cache or coalesced onto an in-flight classification; fresh
// binaries ride a micro-batch window.
func (e *Engine) Classify(s *dataset.Sample) core.Prediction {
	st := e.state.Load()
	key, keyed := SampleKey(s)
	if !keyed || st.cache == nil {
		e.misses.Add(1)
		return e.enqueue(s)
	}
	if p, ok := st.cache.Get(key); ok {
		e.hits.Add(1)
		return p
	}

	st.inflightMu.Lock()
	if f, ok := st.inflight[key]; ok {
		st.inflightMu.Unlock()
		e.coalesced.Add(1)
		<-f.done
		return f.pred
	}
	// Losing the Get race above to a completed flight is possible;
	// re-check the cache under the inflight lock so we never refeaturise
	// a binary that finished in the gap.
	if p, ok := st.cache.Get(key); ok {
		st.inflightMu.Unlock()
		e.hits.Add(1)
		return p
	}
	f := &flight{done: make(chan struct{})}
	st.inflight[key] = f
	st.inflightMu.Unlock()

	e.misses.Add(1)
	pred := e.enqueue(s)
	f.pred = pred
	// Bookkeeping stays within the captured epoch: if a Swap retired it
	// while this request was in flight, the Add lands in the orphaned
	// cache and is never served — the live epoch only ever caches
	// predictions computed by its own backend (or a newer one, equally
	// fresh by then).
	st.cache.Add(key, pred)
	st.inflightMu.Lock()
	delete(st.inflight, key)
	st.inflightMu.Unlock()
	close(f.done)
	return pred
}

// Lookup probes the current epoch's prediction cache by content digest
// without featurising, classifying or coalescing anything. It backs the
// hash-first protocol leg: a client that already knows its binary's
// SHA-256 asks whether a prediction exists before shipping any bytes.
// A hit counts toward Stats.Hits like any cache-served prediction; a
// miss is free — no counter moves, nothing is enqueued — because the
// client will follow up with the body and that request does the real
// accounting. Allocation-free on both outcomes.
//
// fhc:hotpath
func (e *Engine) Lookup(key Key) (core.Prediction, bool) {
	st := e.state.Load()
	if st.cache == nil {
		return core.Prediction{}, false
	}
	p, ok := st.cache.Get(key)
	if ok {
		e.hits.Add(1)
	}
	return p, ok
}

// ClassifyAll predicts many samples concurrently through the batching
// and caching layers, preserving input order. Concurrency is what fills
// micro-batch windows, so a stream of N samples costs N goroutines;
// chunk very large streams.
func (e *Engine) ClassifyAll(samples []dataset.Sample) []core.Prediction {
	out := make([]core.Prediction, len(samples))
	var wg sync.WaitGroup
	for i := range samples {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = e.Classify(&samples[i])
		}(i)
	}
	wg.Wait()
	return out
}

// enqueue hands one sample to the batcher and waits for its prediction.
// After Close the engine degrades to direct unbatched classification.
func (e *Engine) enqueue(s *dataset.Sample) core.Prediction {
	r := &request{sample: s, out: make(chan core.Prediction, 1)}
	e.sendMu.RLock()
	if e.closed {
		e.sendMu.RUnlock()
		return e.direct(s)
	}
	// The send must stay under sendMu: Close takes the write lock before
	// closing the queue, so holding the read lock is exactly what makes
	// this send close-safe. The queue is buffered and drained by a
	// dedicated dispatcher, so blocking here means backpressure, not a
	// lock-holder stall.
	e.queue <- r //fhcvet:ignore lockhold send under sendMu.RLock is the close-safety idiom; Close excludes it via the write lock
	e.sendMu.RUnlock()
	return <-r.out
}

// direct classifies one sample synchronously, bypassing the batcher.
// Like a batch, it runs entirely on one backend under the swap lock.
func (e *Engine) direct(s *dataset.Sample) core.Prediction {
	e.swapMu.RLock()
	defer e.swapMu.RUnlock()
	backend := e.state.Load().backend
	probas := backend.PredictProbaBatch([]dataset.Sample{*s})
	return backend.PredictFromProba(probas[0])
}

// dispatch accumulates requests into windows bounded by BatchSize and
// MaxLatency and hands each window to an executor, at most Workers of
// which run at once.
func (e *Engine) dispatch() {
	defer e.loopWG.Done()
	for {
		first, ok := <-e.queue
		if !ok {
			return
		}
		batch, acquired := e.fill(first)
		if !acquired {
			e.sem <- struct{}{}
		}
		e.loopWG.Add(1)
		go func(b []*request) {
			defer e.loopWG.Done()
			defer func() { <-e.sem }()
			e.runBatch(b)
		}(batch)
	}
}

// fill grows a window starting at first. It is work-conserving: whatever
// is already queued is taken greedily, and once the queue drains the
// window only lingers for stragglers — bounded by MaxLatency — while
// every executor is busy, because lingering with an idle executor buys
// batching nothing. Reports whether it already acquired an executor
// slot.
func (e *Engine) fill(first *request) (batch []*request, acquired bool) {
	batch = []*request{first}
	for len(batch) < e.opt.BatchSize {
		select {
		case r, ok := <-e.queue:
			if !ok {
				return batch, false
			}
			batch = append(batch, r)
			continue
		default:
		}
		break
	}
	if len(batch) >= e.opt.BatchSize {
		return batch, false
	}
	select {
	case e.sem <- struct{}{}: // idle executor: dispatch what we have
		return batch, true
	default:
	}
	deadline := time.NewTimer(e.opt.MaxLatency)
	defer deadline.Stop()
	for len(batch) < e.opt.BatchSize {
		select {
		case r, ok := <-e.queue:
			if !ok {
				return batch, false
			}
			batch = append(batch, r)
		case e.sem <- struct{}{}: // an executor freed up: go now
			return batch, true
		case <-deadline.C:
			return batch, false
		}
	}
	return batch, false
}

// runBatch executes one window and delivers per-request predictions
// with a fresh threshold read each. The backend is resolved once, under
// the swap lock, and used for the whole window — probability prediction
// and thresholding — so every request in the window is answered by
// exactly one model generation. Delivery happens inside the lock span:
// Swap's write lock therefore drains every window computed by the
// outgoing backend before it returns.
func (e *Engine) runBatch(b []*request) {
	e.batches.Add(1)
	e.batchedSamples.Add(uint64(len(b)))
	for {
		cur := e.maxB.Load()
		if uint64(len(b)) <= cur || e.maxB.CompareAndSwap(cur, uint64(len(b))) {
			break
		}
	}
	samples := make([]dataset.Sample, len(b))
	for i, r := range b {
		samples[i] = *r.sample
	}
	e.swapMu.RLock()
	defer e.swapMu.RUnlock()
	backend := e.state.Load().backend
	probas := backend.PredictProbaBatch(samples)
	for i, r := range b {
		// Delivery must stay inside the swapMu span — that is the drain
		// invariant Swap relies on — and each out channel is buffered
		// (capacity 1, one send ever), so the send cannot block.
		r.out <- backend.PredictFromProba(probas[i]) //fhcvet:ignore lockhold delivery under swapMu.RLock is the drain invariant; out has capacity 1
	}
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Hits:           e.hits.Load(),
		Misses:         e.misses.Load(),
		Coalesced:      e.coalesced.Load(),
		Evicted:        e.cacheEvicted.Load(),
		Swaps:          e.swaps.Load(),
		Batches:        e.batches.Load(),
		BatchedSamples: e.batchedSamples.Load(),
		MaxBatch:       e.maxB.Load(),
	}
	ep := e.state.Load()
	if ep.cache != nil {
		st.CacheEntries = ep.cache.Len()
	}
	ep.inflightMu.Lock()
	st.Inflight = len(ep.inflight)
	ep.inflightMu.Unlock()
	return st
}

// Closed reports whether Close has completed. A closed engine still
// answers Classify (degraded to direct classification), so Closed is a
// readiness signal, not a liveness one — the HTTP layer's /readyz uses
// it to stop advertising the batching path during shutdown.
func (e *Engine) Closed() bool {
	e.sendMu.RLock()
	defer e.sendMu.RUnlock()
	return e.closed
}

// Close drains pending requests and stops the batcher. It is idempotent
// and safe alongside concurrent Classify calls, which fall back to
// direct classification once the engine is closed.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.sendMu.Lock()
		e.closed = true
		close(e.queue)
		e.sendMu.Unlock()
		e.loopWG.Wait()
	})
}
