package ssdeep

import (
	"bytes"
	"testing"
)

// FuzzParse feeds arbitrary text to the digest parser: it must never
// panic, and anything it accepts must round trip.
func FuzzParse(f *testing.F) {
	f.Add("3:abc:def")
	f.Add("96:QcPICzcyxOK7gfp1RNuZBevzxHU8nEksG2:VxbxQ/Zvu8nP92")
	f.Add("::")
	f.Add("3::")
	f.Add("18446744073709551616:a:b")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(d.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", d.String(), s, err)
		}
		if back != d {
			t.Fatalf("round trip changed digest: %v vs %v", back, d)
		}
		// Accepted digests must be comparable without panicking.
		if score := Compare(d, d); score < 0 || score > 100 {
			t.Fatalf("self-comparison of %q = %d", s, score)
		}
	})
}

// FuzzHashStreamingMatchesBytes is the streaming differential: across
// arbitrary inputs and arbitrary chunk boundaries — one-byte writes
// included — the streaming Hasher must produce a digest bit-identical
// to the buffered HashBytes oracle.
func FuzzHashStreamingMatchesBytes(f *testing.F) {
	f.Add([]byte("hello world, this is a seed input for fuzzing"), uint64(1))
	f.Add(bytes.Repeat([]byte{0xaa, 0x55}, 600), uint64(0x0102030405060708))
	// All-zero inputs have no trigger points at any block size, forcing
	// the block-size-halving retry all the way down to MinBlockSize.
	f.Add(make([]byte, 4096), uint64(7))
	f.Add(append(make([]byte, 2000), []byte("entropy tail after a long quiet run")...), uint64(3))
	f.Fuzz(func(t *testing.T, data []byte, chunkSeed uint64) {
		if len(data) == 0 {
			return
		}
		want, err := HashBytes(data)
		if err != nil {
			t.Fatalf("HashBytes(%d bytes): %v", len(data), err)
		}
		// Chunk sizes derived from the seed nibbles (1..16 bytes), so the
		// fuzzer explores boundary placement as well as content.
		h := NewHasher()
		defer h.Release()
		rest := data
		for i := 0; len(rest) > 0; i++ {
			n := int(chunkSeed>>((i%16)*4)&0xf) + 1
			if n > len(rest) {
				n = len(rest)
			}
			h.Write(rest[:n])
			rest = rest[n:]
		}
		got, err := h.Sum()
		if err != nil {
			t.Fatalf("Sum: %v", err)
		}
		if got != want {
			t.Fatalf("streaming %q != buffered %q (seed %#x, %d bytes)", got, want, chunkSeed, len(data))
		}
		// One-byte writes through a reused hasher must agree too.
		h.Reset()
		for _, c := range data {
			h.Write([]byte{c})
		}
		got, err = h.Sum()
		if err != nil {
			t.Fatalf("Sum (1-byte writes): %v", err)
		}
		if got != want {
			t.Fatalf("1-byte streaming %q != buffered %q", got, want)
		}
	})
}

// FuzzHashCompare hashes arbitrary inputs and mutations of them: scores
// must stay within bounds, self-similarity must be 100, and hashing must
// be deterministic.
func FuzzHashCompare(f *testing.F) {
	f.Add([]byte("hello world, this is a seed input for fuzzing"), uint8(3))
	f.Add(bytes.Repeat([]byte{0xaa, 0x55}, 600), uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, flips uint8) {
		if len(data) == 0 {
			return
		}
		d1, err := HashBytes(data)
		if err != nil {
			t.Fatalf("HashBytes(%d bytes): %v", len(data), err)
		}
		d2, err := HashBytes(data)
		if err != nil || d1 != d2 {
			t.Fatalf("hashing not deterministic: %v vs %v (%v)", d1, d2, err)
		}
		if got := Compare(d1, d2); got != 100 {
			t.Fatalf("self-similarity = %d", got)
		}
		mut := append([]byte(nil), data...)
		for i := 0; i < int(flips); i++ {
			mut[(i*131)%len(mut)] ^= byte(i + 1)
		}
		dm, err := HashBytes(mut)
		if err != nil {
			t.Fatal(err)
		}
		s1, s2 := Compare(d1, dm), Compare(dm, d1)
		if s1 != s2 {
			t.Fatalf("asymmetric score %d vs %d", s1, s2)
		}
		if s1 < 0 || s1 > 100 {
			t.Fatalf("score out of range: %d", s1)
		}
	})
}
