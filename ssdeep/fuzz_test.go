package ssdeep

import (
	"bytes"
	"testing"
)

// FuzzParse feeds arbitrary text to the digest parser: it must never
// panic, and anything it accepts must round trip.
func FuzzParse(f *testing.F) {
	f.Add("3:abc:def")
	f.Add("96:QcPICzcyxOK7gfp1RNuZBevzxHU8nEksG2:VxbxQ/Zvu8nP92")
	f.Add("::")
	f.Add("3::")
	f.Add("18446744073709551616:a:b")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(d.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", d.String(), s, err)
		}
		if back != d {
			t.Fatalf("round trip changed digest: %v vs %v", back, d)
		}
		// Accepted digests must be comparable without panicking.
		if score := Compare(d, d); score < 0 || score > 100 {
			t.Fatalf("self-comparison of %q = %d", s, score)
		}
	})
}

// FuzzHashCompare hashes arbitrary inputs and mutations of them: scores
// must stay within bounds, self-similarity must be 100, and hashing must
// be deterministic.
func FuzzHashCompare(f *testing.F) {
	f.Add([]byte("hello world, this is a seed input for fuzzing"), uint8(3))
	f.Add(bytes.Repeat([]byte{0xaa, 0x55}, 600), uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, flips uint8) {
		if len(data) == 0 {
			return
		}
		d1, err := HashBytes(data)
		if err != nil {
			t.Fatalf("HashBytes(%d bytes): %v", len(data), err)
		}
		d2, err := HashBytes(data)
		if err != nil || d1 != d2 {
			t.Fatalf("hashing not deterministic: %v vs %v (%v)", d1, d2, err)
		}
		if got := Compare(d1, d2); got != 100 {
			t.Fatalf("self-similarity = %d", got)
		}
		mut := append([]byte(nil), data...)
		for i := 0; i < int(flips); i++ {
			mut[(i*131)%len(mut)] ^= byte(i + 1)
		}
		dm, err := HashBytes(mut)
		if err != nil {
			t.Fatal(err)
		}
		s1, s2 := Compare(d1, dm), Compare(dm, d1)
		if s1 != s2 {
			t.Fatalf("asymmetric score %d vs %d", s1, s2)
		}
		if s1 < 0 || s1 > 100 {
			t.Fatalf("score out of range: %d", s1)
		}
	})
}
