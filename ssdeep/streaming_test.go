package ssdeep

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeChunked feeds data to h in chunks of the given sizes, cycling
// through sizes until data is exhausted.
func writeChunked(h *Hasher, data []byte, sizes []int) {
	for i := 0; len(data) > 0; i++ {
		n := sizes[i%len(sizes)]
		if n <= 0 {
			n = 1
		}
		if n > len(data) {
			n = len(data)
		}
		h.Write(data[:n])
		data = data[n:]
	}
}

// streamingInputs is the shared corpus of inputs chosen to hit every
// structural branch: block-size halving (short and low-entropy inputs),
// multi-context cascades, signature caps, and the residue-only path.
func streamingInputs(t testing.TB) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(0x5eed))
	random := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	return map[string][]byte{
		"one-byte":        {0x42},
		"window-exact":    []byte("1234567"),
		"ascii-short":     []byte("hello world, streaming ctph should match the oracle"),
		"zeros-small":     make([]byte, 100),
		"zeros-large":     make([]byte, 1<<16),
		"repeat-ab":       bytes.Repeat([]byte{0xaa, 0x55}, 4000),
		"repeat-text":     bytes.Repeat([]byte("abcdefg"), 3000),
		"random-1k":       random(1 << 10),
		"random-64k":      random(64 << 10),
		"random-1m":       random(1 << 20),
		"random-odd":      random(12347),
		"halving-trigger": append(random(200), make([]byte, 8000)...),
		"sparse":          append(make([]byte, 5000), random(64)...),
	}
}

// TestHasherMatchesHashBytes is the core differential: the streaming
// digest must be bit-identical to the buffered oracle across inputs and
// chunkings, including one-byte writes.
func TestHasherMatchesHashBytes(t *testing.T) {
	chunkings := map[string][]int{
		"whole":     {1 << 30},
		"one-byte":  {1},
		"tiny":      {2, 3, 1, 5},
		"64k":       {64 << 10},
		"odd-sizes": {7, 113, 1, 4096, 31},
	}
	for name, data := range streamingInputs(t) {
		want, err := HashBytes(data)
		if err != nil {
			t.Fatalf("HashBytes(%s): %v", name, err)
		}
		for cname, sizes := range chunkings {
			h := NewHasher()
			writeChunked(h, data, sizes)
			got, err := h.Sum()
			h.Release()
			if err != nil {
				t.Fatalf("%s/%s: Sum: %v", name, cname, err)
			}
			if got != want {
				t.Fatalf("%s/%s: streaming %q != buffered %q", name, cname, got, want)
			}
		}
	}
}

// TestHasherIncrementalPrefixes checks every prefix of an input against
// the oracle using a single hasher: Sum must be non-destructive and the
// state must stay exact as bytes keep arriving.
func TestHasherIncrementalPrefixes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 3000)
	rng.Read(data)
	h := NewHasher()
	defer h.Release()
	for i := 1; i <= len(data); i++ {
		h.Write(data[i-1 : i])
		if i%257 != 0 && i != len(data) {
			continue // spot-check prefixes; every byte would be O(n^2)
		}
		got, err := h.Sum()
		if err != nil {
			t.Fatalf("Sum after %d bytes: %v", i, err)
		}
		want, err := HashBytes(data[:i])
		if err != nil {
			t.Fatalf("HashBytes(%d bytes): %v", i, err)
		}
		if got != want {
			t.Fatalf("prefix %d: streaming %q != buffered %q", i, got, want)
		}
	}
	// Sum twice: identical, still matching.
	a, _ := h.Sum()
	b, _ := h.Sum()
	if a != b {
		t.Fatalf("Sum not idempotent: %q vs %q", a, b)
	}
}

// TestHasherEmptyAndReset covers the empty-input error and pool reuse.
func TestHasherEmptyAndReset(t *testing.T) {
	h := NewHasher()
	defer h.Release()
	if _, err := h.Sum(); err != ErrEmptyInput {
		t.Fatalf("Sum of empty hasher: got %v, want ErrEmptyInput", err)
	}
	h.Write([]byte("some bytes to dirty the state, enough to fork contexts and append characters"))
	if _, err := h.Sum(); err != nil {
		t.Fatalf("Sum: %v", err)
	}
	h.Reset()
	if _, err := h.Sum(); err != ErrEmptyInput {
		t.Fatalf("Sum after Reset: got %v, want ErrEmptyInput", err)
	}
	data := []byte("fresh input after reset must hash as if the hasher were new")
	h.Write(data)
	got, err := h.Sum()
	if err != nil {
		t.Fatalf("Sum after Reset+Write: %v", err)
	}
	want, _ := HashBytes(data)
	if got != want {
		t.Fatalf("after Reset: %q != %q", got, want)
	}
}

// errReader fails after yielding a prefix.
type errReader struct {
	data []byte
	err  error
}

func (r *errReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestHashReaderStreaming checks the reader form against both oracles
// and propagates read errors.
func TestHashReaderStreaming(t *testing.T) {
	for name, data := range streamingInputs(t) {
		got, err := HashReaderStreaming(iotestOneByte{bytes.NewReader(data)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := HashReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: HashReader: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: streaming %q != buffered %q", name, got, want)
		}
	}
	if _, err := HashReaderStreaming(bytes.NewReader(nil)); err != ErrEmptyInput {
		t.Fatalf("empty reader: got %v, want ErrEmptyInput", err)
	}
	boom := &errReader{data: []byte("partial"), err: io.ErrUnexpectedEOF}
	if _, err := HashReaderStreaming(boom); err == nil {
		t.Fatal("read error not propagated")
	}
}

// iotestOneByte forces one-byte reads to exercise short-read handling.
type iotestOneByte struct{ r io.Reader }

func (o iotestOneByte) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

// TestHashFileStreaming checks the file form against HashFile.
func TestHashFileStreaming(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	rng := rand.New(rand.NewSource(99))
	data := make([]byte, 200_000)
	rng.Read(data)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := HashFileStreaming(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := HashFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streaming %q != buffered %q", got, want)
	}
	if _, err := HashFileStreaming(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file: expected error")
	}
}

// TestHasherZeroAlloc proves the steady-state write loop and Sum do not
// allocate: the O(1)-memory ingestion invariant at the hasher layer.
func TestHasherZeroAlloc(t *testing.T) {
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(5)).Read(data)
	h := NewHasher()
	defer h.Release()
	h.Write(data) // warm: fork all contexts this input will ever need
	allocs := testing.AllocsPerRun(10, func() {
		h.Write(data)
	})
	if allocs != 0 {
		t.Fatalf("Write allocates %v times per call", allocs)
	}
	// Sum allocates only the two signature strings.
	allocs = testing.AllocsPerRun(10, func() {
		if _, err := h.Sum(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("Sum allocates %v times per call, want <= 2", allocs)
	}
}

// BenchmarkHashStreaming measures the streaming hasher against the
// buffered oracle on the same input.
func BenchmarkHashStreaming(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.Run("streaming", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		h := NewHasher()
		defer h.Release()
		for i := 0; i < b.N; i++ {
			h.Reset()
			h.Write(data)
			if _, err := h.Sum(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("buffered", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := HashBytes(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}
