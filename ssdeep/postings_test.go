package ssdeep

import (
	"testing"
	"testing/quick"
)

// TestPostingsRoundTrip encodes ascending id sequences (with the
// same-id repeats post generates for duplicate grams) and asserts the
// streaming decode returns exactly the deduplicated sequence.
func TestPostingsRoundTrip(t *testing.T) {
	cases := [][]int32{
		{0},
		{0, 0, 0},
		{0, 1, 2, 3},
		{5, 5, 9, 300, 300, 70000, 1 << 20},
		{127, 128, 129}, // varint length boundary
		{16383, 16384},
	}
	for _, ids := range cases {
		p := &postings{last: -1}
		var want []int32
		for _, id := range ids {
			p.add(id)
			if len(want) == 0 || want[len(want)-1] != id {
				want = append(want, id)
			}
		}
		var got []int32
		p.each(func(id int32) { got = append(got, id) })
		if len(got) != len(want) {
			t.Fatalf("ids %v: decoded %v, want %v", ids, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ids %v: decoded %v, want %v", ids, got, want)
			}
		}
	}
}

// Property: arbitrary ascending sequences survive the delta-varint
// round trip.
func TestPostingsRoundTripProperty(t *testing.T) {
	f := func(deltas []uint16, repeats uint8) bool {
		p := &postings{last: -1}
		var want []int32
		id := int32(-1)
		for i, d := range deltas {
			id += int32(d)%1000 + 1 // strictly ascending
			n := 1
			if i%5 == int(repeats)%5 {
				n = 3 // duplicate adds of the same id must collapse
			}
			for k := 0; k < n; k++ {
				p.add(id)
			}
			want = append(want, id)
		}
		var got []int32
		p.each(func(v int32) { got = append(got, v) })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPostingsCompression pins the space win the encoding exists for:
// dense ascending ids cost about a byte each, against four for raw
// int32 slices.
func TestPostingsCompression(t *testing.T) {
	p := &postings{last: -1}
	const n = 1000
	for id := int32(0); id < n; id++ {
		p.add(id)
	}
	if len(p.data) > n+2 {
		t.Fatalf("dense postings use %d bytes for %d ids, want ~1 byte/id", len(p.data), n)
	}
	decoded := 0
	p.each(func(int32) { decoded++ })
	if decoded != n {
		t.Fatalf("decoded %d ids, want %d", decoded, n)
	}
}

// BenchmarkPostingsDecode measures the streaming varint scan collect
// runs per shared gram.
func BenchmarkPostingsDecode(b *testing.B) {
	p := &postings{last: -1}
	for id := int32(0); id < 1000; id += 3 {
		p.add(id)
	}
	var sink int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.each(func(id int32) { sink = id })
	}
	_ = sink
}
