package ssdeep

// Prepared is a digest pre-processed for repeated comparison: signatures
// are normalised once and the rolling 7-gram hashes backing the
// common-substring gate are precomputed. Classifier feature extraction
// compares every sample against every class profile, so this preparation
// removes the dominant constant factor from the hot loop.
type Prepared struct {
	// BlockSize mirrors Digest.BlockSize.
	BlockSize uint32

	sig1, sig2     string
	grams1, grams2 []uint32
}

// Prepare normalises d and precomputes its comparison state.
func Prepare(d Digest) Prepared {
	p := Prepared{
		BlockSize: d.BlockSize,
		sig1:      normalize(d.Sig1),
		sig2:      normalize(d.Sig2),
	}
	p.grams1 = gramHashes(p.sig1, nil)
	p.grams2 = gramHashes(p.sig2, nil)
	return p
}

// IsZero reports whether p was prepared from the zero digest.
func (p Prepared) IsZero() bool {
	return p.BlockSize == 0 && p.sig1 == "" && p.sig2 == ""
}

// ComparePrepared returns the 0–100 similarity of two prepared digests
// under the supplied distance. It is equivalent to CompareDistance on the
// originating digests.
//
// fhc:hotpath
func ComparePrepared(a, b Prepared, dist DistanceFunc) int {
	if a.IsZero() || b.IsZero() {
		return 0
	}
	if a.BlockSize != b.BlockSize && a.BlockSize != 2*b.BlockSize && 2*a.BlockSize != b.BlockSize {
		return 0
	}
	if a.BlockSize == b.BlockSize && a.sig1 == b.sig1 && a.sig2 == b.sig2 {
		return 100
	}
	switch {
	case a.BlockSize == b.BlockSize:
		s1 := scorePrepared(a.sig1, b.sig1, a.grams1, b.grams1, a.BlockSize, dist)
		s2 := scorePrepared(a.sig2, b.sig2, a.grams2, b.grams2, 2*a.BlockSize, dist)
		if s2 > s1 {
			return s2
		}
		return s1
	case a.BlockSize == 2*b.BlockSize:
		return scorePrepared(a.sig1, b.sig2, a.grams1, b.grams2, a.BlockSize, dist)
	default:
		return scorePrepared(a.sig2, b.sig1, a.grams2, b.grams1, b.BlockSize, dist)
	}
}

func scorePrepared(s1, s2 string, g1, g2 []uint32, blockSize uint32, dist DistanceFunc) int {
	if len(s1) < rollingWindow || len(s2) < rollingWindow {
		return 0
	}
	if !commonGram(s1, s2, g1, g2) {
		return 0
	}
	return scoreGated(s1, s2, blockSize, dist)
}

// scoreGated is scoreStrings with the common-substring gate already passed.
func scoreGated(s1, s2 string, blockSize uint32, dist DistanceFunc) int {
	d := dist(s1, s2)
	score := d * SpamsumLength / (len(s1) + len(s2))
	score = 100 * score / SpamsumLength
	if score >= 100 {
		return 0
	}
	score = 100 - score
	const uncapped = (99 + rollingWindow) / rollingWindow * MinBlockSize
	if blockSize < uncapped {
		m := len(s1)
		if len(s2) < m {
			m = len(s2)
		}
		capScore := int(blockSize) / MinBlockSize * m
		if score > capScore {
			score = capScore
		}
	}
	return score
}

// commonGram reports whether s1 and s2 share a 7-byte substring, using
// precomputed rolling-gram hashes for both sides.
func commonGram(s1, s2 string, g1, g2 []uint32) bool {
	for i := 0; i < len(g1); i++ {
		h := g1[i]
		for j := 0; j < len(g2); j++ {
			if h == g2[j] && s1[i:i+rollingWindow] == s2[j:j+rollingWindow] {
				return true
			}
		}
	}
	return false
}
