// Package ssdeep is a from-scratch implementation of similarity-preserving
// fuzzy hashing using Context Triggered Piecewise Hashing (CTPH), the
// technique introduced by Kornblum ("Identifying almost identical files
// using context triggered piecewise hashing", Digital Investigation 2006)
// and popularised by the ssdeep tool.
//
// A fuzzy digest has the textual form
//
//	blocksize:signature1:signature2
//
// where signature1 is computed with the stated block size and signature2
// with twice that block size. Two digests can be compared even when the
// underlying inputs differ, yielding a similarity score between 0 (no
// similarity) and 100 (identical). Following the reproduced paper, the
// default scoring distance is the restricted Damerau–Levenshtein edit
// distance (Equation 1 of the paper); the historic spamsum weighted edit
// distance and plain Levenshtein distance are available for ablation.
package ssdeep

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/editdist"
)

const (
	// SpamsumLength is the maximum length of each digest signature.
	SpamsumLength = 64
	// MinBlockSize is the smallest CTPH block size.
	MinBlockSize = 3
	// rollingWindow is the width of the rolling-hash window that triggers
	// chunk boundaries and defines the common-substring gate.
	rollingWindow = 7
	// hashPrime and hashInit parameterise the FNV-style chunk hash.
	hashPrime = 0x01000193
	hashInit  = 0x28021967
	// b64 is the alphabet used to emit digest characters.
	b64 = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	// maxRepeat is the longest run of identical characters kept when
	// normalising a signature before comparison; longer runs carry no
	// information (they arise from repeated content) and would skew the
	// edit distance.
	maxRepeat = 3
)

// ErrEmptyInput is returned when hashing zero bytes; a fuzzy hash of an
// empty input carries no similarity information.
var ErrEmptyInput = errors.New("ssdeep: empty input")

// Digest is a parsed fuzzy hash.
type Digest struct {
	// BlockSize is the block size used for Sig1; Sig2 uses twice this.
	BlockSize uint32
	// Sig1 and Sig2 are the two piecewise signatures.
	Sig1, Sig2 string
}

// String renders the digest in the canonical blocksize:sig1:sig2 form.
func (d Digest) String() string {
	return strconv.FormatUint(uint64(d.BlockSize), 10) + ":" + d.Sig1 + ":" + d.Sig2
}

// IsZero reports whether d is the zero digest.
func (d Digest) IsZero() bool {
	return d.BlockSize == 0 && d.Sig1 == "" && d.Sig2 == ""
}

// Parse parses a digest in blocksize:sig1:sig2 form.
func Parse(s string) (Digest, error) {
	first := strings.IndexByte(s, ':')
	if first < 0 {
		return Digest{}, fmt.Errorf("ssdeep: malformed digest %q: missing separator", s)
	}
	second := strings.IndexByte(s[first+1:], ':')
	if second < 0 {
		return Digest{}, fmt.Errorf("ssdeep: malformed digest %q: missing second separator", s)
	}
	second += first + 1
	bs, err := strconv.ParseUint(s[:first], 10, 32)
	if err != nil {
		return Digest{}, fmt.Errorf("ssdeep: malformed block size in %q: %w", s, err)
	}
	if bs < MinBlockSize {
		return Digest{}, fmt.Errorf("ssdeep: block size %d below minimum %d", bs, MinBlockSize)
	}
	d := Digest{
		BlockSize: uint32(bs),
		Sig1:      s[first+1 : second],
		Sig2:      s[second+1:],
	}
	if len(d.Sig1) > SpamsumLength || len(d.Sig2) > SpamsumLength {
		return Digest{}, fmt.Errorf("ssdeep: signature too long in %q", s)
	}
	return d, nil
}

// rollState is the spamsum rolling hash over a 7-byte window. The sum of
// its three components changes whenever any byte in the window changes,
// which is what makes chunk boundaries content-triggered.
type rollState struct {
	window [rollingWindow]byte
	h1     uint32 // sum of window bytes
	h2     uint32 // position-weighted sum
	h3     uint32 // shift-xor mix
	n      uint32 // total bytes consumed
}

func (r *rollState) roll(c byte) uint32 {
	r.h2 -= r.h1
	r.h2 += rollingWindow * uint32(c)
	r.h1 += uint32(c)
	r.h1 -= uint32(r.window[r.n%rollingWindow])
	r.window[r.n%rollingWindow] = c
	r.n++
	r.h3 <<= 5
	r.h3 ^= uint32(c)
	return r.h1 + r.h2 + r.h3
}

// sumHash is the FNV-1 style piecewise chunk hash.
func sumHash(h uint32, c byte) uint32 {
	return h*hashPrime ^ uint32(c)
}

// HashBytes computes the fuzzy digest of data.
func HashBytes(data []byte) (Digest, error) {
	if len(data) == 0 {
		return Digest{}, ErrEmptyInput
	}
	// Initial block-size guess: the smallest power-of-two multiple of
	// MinBlockSize whose expected signature length fits SpamsumLength.
	bs := uint32(MinBlockSize)
	for uint64(bs)*SpamsumLength < uint64(len(data)) {
		bs *= 2
	}
	for {
		d := hashAtBlockSize(data, bs)
		// If the signature came out too short the input has too few
		// trigger points at this block size; retry with a smaller one to
		// regain resolution, exactly as the reference implementation does.
		if bs > MinBlockSize && len(d.Sig1) < SpamsumLength/2 {
			bs /= 2
			continue
		}
		return d, nil
	}
}

// hashAtBlockSize computes both signatures of data in one pass using block
// sizes bs and 2*bs.
func hashAtBlockSize(data []byte, bs uint32) Digest {
	var (
		roll rollState
		s1   = make([]byte, 0, SpamsumLength)
		s2   = make([]byte, 0, SpamsumLength/2)
		h1   = uint32(hashInit)
		h2   = uint32(hashInit)
	)
	for _, c := range data {
		rh := roll.roll(c)
		h1 = sumHash(h1, c)
		h2 = sumHash(h2, c)
		if rh%bs == bs-1 {
			if len(s1) < SpamsumLength-1 {
				s1 = append(s1, b64[h1%64])
				h1 = hashInit
			}
		}
		if rh%(2*bs) == 2*bs-1 {
			if len(s2) < SpamsumLength/2-1 {
				s2 = append(s2, b64[h2%64])
				h2 = hashInit
			}
		}
	}
	// Capture the residue after the last trigger point.
	if roll.h1+roll.h2+roll.h3 != 0 {
		s1 = append(s1, b64[h1%64])
		s2 = append(s2, b64[h2%64])
	}
	return Digest{BlockSize: bs, Sig1: string(s1), Sig2: string(s2)}
}

// HashReader computes the fuzzy digest of everything readable from r.
// CTPH needs the total length before choosing a block size, so the reader
// is buffered in memory.
func HashReader(r io.Reader) (Digest, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Digest{}, fmt.Errorf("ssdeep: reading input: %w", err)
	}
	return HashBytes(data)
}

// HashFile computes the fuzzy digest of the named file.
func HashFile(path string) (Digest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Digest{}, fmt.Errorf("ssdeep: %w", err)
	}
	return HashBytes(data)
}

// HashString computes the fuzzy digest of s.
func HashString(s string) (Digest, error) {
	return HashBytes([]byte(s))
}

// DistanceFunc measures the dissimilarity of two signature strings.
// Smaller is more similar; 0 means identical.
type DistanceFunc func(a, b string) int

// Distance functions selectable for scoring. The paper specifies the
// Damerau–Levenshtein distance; DistanceDL is therefore the default.
var (
	// DistanceDL is the restricted Damerau–Levenshtein distance of the
	// paper's Equation 1 (unit-cost insert/delete/substitute/transpose).
	DistanceDL DistanceFunc = editdist.OSA
	// DistanceLevenshtein is the plain Levenshtein distance.
	DistanceLevenshtein DistanceFunc = editdist.Levenshtein
	// DistanceSpamsum is the weighted edit distance of the original
	// spamsum implementation (insert/delete 1, substitute 3, transpose 5).
	DistanceSpamsum DistanceFunc = func(a, b string) int {
		return editdist.Weighted(a, b, editdist.SpamsumCosts())
	}
	// DistanceDLOracle and DistanceLevenshteinOracle are the
	// dynamic-programming forms of DistanceDL and DistanceLevenshtein:
	// the differential oracles the bit-parallel defaults are tested
	// against, selectable in production to cross-check a deployment.
	DistanceDLOracle          DistanceFunc = editdist.OSADP
	DistanceLevenshteinOracle DistanceFunc = editdist.LevenshteinDP
)

// Compare returns the similarity score of two digests on the scale 0–100
// using the default Damerau–Levenshtein distance.
func Compare(a, b Digest) int {
	return CompareDistance(a, b, DistanceDL)
}

// CompareStrings parses two textual digests and compares them.
func CompareStrings(a, b string) (int, error) {
	da, err := Parse(a)
	if err != nil {
		return 0, err
	}
	db, err := Parse(b)
	if err != nil {
		return 0, err
	}
	return Compare(da, db), nil
}

// CompareDistance returns the similarity score of two digests using the
// supplied signature distance.
func CompareDistance(a, b Digest, dist DistanceFunc) int {
	if a.IsZero() || b.IsZero() {
		return 0
	}
	// Digests are only comparable when their block sizes overlap.
	if a.BlockSize != b.BlockSize && a.BlockSize != 2*b.BlockSize && 2*a.BlockSize != b.BlockSize {
		return 0
	}
	// Normalise long character runs before any comparison.
	a1, a2 := normalize(a.Sig1), normalize(a.Sig2)
	b1, b2 := normalize(b.Sig1), normalize(b.Sig2)

	if a.BlockSize == b.BlockSize && a1 == b1 && a2 == b2 {
		return 100
	}
	switch {
	case a.BlockSize == b.BlockSize:
		s1 := scoreStrings(a1, b1, a.BlockSize, dist)
		s2 := scoreStrings(a2, b2, 2*a.BlockSize, dist)
		if s2 > s1 {
			return s2
		}
		return s1
	case a.BlockSize == 2*b.BlockSize:
		return scoreStrings(a1, b2, a.BlockSize, dist)
	default: // 2*a.BlockSize == b.BlockSize
		return scoreStrings(a2, b1, b.BlockSize, dist)
	}
}

// scoreStrings maps the edit distance between two normalised signatures to
// the 0–100 similarity scale, with the reference implementation's guards:
// signatures must share a common substring of rollingWindow characters,
// and matches at small block sizes are capped so short signatures cannot
// claim high similarity.
func scoreStrings(s1, s2 string, blockSize uint32, dist DistanceFunc) int {
	if len(s1) > SpamsumLength || len(s2) > SpamsumLength {
		return 0
	}
	if len(s1) < rollingWindow || len(s2) < rollingWindow {
		return 0
	}
	if !hasCommonSubstring(s1, s2) {
		return 0
	}
	d := dist(s1, s2)
	// Scale the distance by the combined signature length (relative
	// distance), then project onto 0..100 and invert into a similarity.
	score := d * SpamsumLength / (len(s1) + len(s2))
	score = 100 * score / SpamsumLength
	if score >= 100 {
		return 0
	}
	score = 100 - score
	// Small block sizes can only arise from small inputs, for which a
	// high match score would overstate the evidence; cap accordingly.
	const uncapped = (99 + rollingWindow) / rollingWindow * MinBlockSize
	if blockSize < uncapped {
		m := len(s1)
		if len(s2) < m {
			m = len(s2)
		}
		capScore := int(blockSize) / MinBlockSize * m
		if score > capScore {
			score = capScore
		}
	}
	return score
}

// normalize collapses runs of more than maxRepeat identical characters,
// mirroring eliminate_sequences in the reference implementation.
func normalize(s string) string {
	if len(s) <= maxRepeat {
		return s
	}
	run := 1
	needs := false
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			run++
			if run > maxRepeat {
				needs = true
				break
			}
		} else {
			run = 1
		}
	}
	if !needs {
		return s
	}
	out := make([]byte, 0, len(s))
	run = 0
	for i := 0; i < len(s); i++ {
		if i > 0 && s[i] == s[i-1] {
			run++
		} else {
			run = 1
		}
		if run <= maxRepeat {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// hasCommonSubstring reports whether s1 and s2 share any substring of
// length rollingWindow. The reference implementation requires this before
// scoring to suppress coincidental base64 overlap. Rolling 7-gram hashes
// keep it O(len(s1)*len(s2)) on 32-bit compares rather than byte compares.
func hasCommonSubstring(s1, s2 string) bool {
	if len(s1) < rollingWindow || len(s2) < rollingWindow {
		return false
	}
	var h1 [SpamsumLength]uint32
	n1 := gramHashes(s1, h1[:0])
	var h2 [SpamsumLength]uint32
	n2 := gramHashes(s2, h2[:0])
	for i := 0; i < len(n1); i++ {
		for j := 0; j < len(n2); j++ {
			if n1[i] == n2[j] &&
				s1[i:i+rollingWindow] == s2[j:j+rollingWindow] {
				return true
			}
		}
	}
	return false
}

// gramHashes appends the rolling hash of every rollingWindow-length
// substring of s to dst and returns it.
func gramHashes(s string, dst []uint32) []uint32 {
	var r rollState
	for i := 0; i < len(s); i++ {
		h := r.roll(s[i])
		if i >= rollingWindow-1 {
			dst = append(dst, h)
		}
	}
	return dst
}
