package ssdeep

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// corpus returns len pseudo-random but deterministic bytes.
func corpus(seed uint64, n int) []byte {
	p := make([]byte, n)
	rng.New(seed).Bytes(p)
	return p
}

func mustHash(t *testing.T, data []byte) Digest {
	t.Helper()
	d, err := HashBytes(data)
	if err != nil {
		t.Fatalf("HashBytes: %v", err)
	}
	return d
}

func TestHashEmptyInput(t *testing.T) {
	if _, err := HashBytes(nil); err == nil {
		t.Fatal("HashBytes(nil) succeeded, want error")
	}
	if _, err := HashBytes([]byte{}); err == nil {
		t.Fatal("HashBytes(empty) succeeded, want error")
	}
}

func TestHashDeterministic(t *testing.T) {
	data := corpus(1, 8192)
	d1 := mustHash(t, data)
	d2 := mustHash(t, data)
	if d1 != d2 {
		t.Fatalf("hash not deterministic: %v vs %v", d1, d2)
	}
}

func TestDigestFormatRoundTrip(t *testing.T) {
	d := mustHash(t, corpus(2, 4096))
	s := d.String()
	parsed, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	if parsed != d {
		t.Fatalf("round trip mismatch: %v vs %v", parsed, d)
	}
	if strings.Count(s, ":") != 2 {
		t.Fatalf("digest %q does not have exactly two separators", s)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"nocolons",
		"3:onlyone",
		"x:abc:def",
		"-3:abc:def",
		"1:abc:def",                           // below MinBlockSize
		"3:" + strings.Repeat("A", 80) + ":x", // sig too long
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseAllowsEmptySignatures(t *testing.T) {
	d, err := Parse("3::")
	if err != nil {
		t.Fatalf("Parse(3::): %v", err)
	}
	if d.BlockSize != 3 || d.Sig1 != "" || d.Sig2 != "" {
		t.Fatalf("Parse(3::) = %+v", d)
	}
}

func TestSignatureLengthBounds(t *testing.T) {
	for _, n := range []int{16, 100, 1000, 10000, 100000} {
		d := mustHash(t, corpus(uint64(n), n))
		if len(d.Sig1) > SpamsumLength {
			t.Errorf("n=%d: Sig1 length %d exceeds %d", n, len(d.Sig1), SpamsumLength)
		}
		if len(d.Sig2) > SpamsumLength/2 {
			t.Errorf("n=%d: Sig2 length %d exceeds %d", n, len(d.Sig2), SpamsumLength/2)
		}
	}
}

func TestBlockSizeGrowsWithInput(t *testing.T) {
	small := mustHash(t, corpus(3, 500))
	large := mustHash(t, corpus(4, 500000))
	if small.BlockSize >= large.BlockSize {
		t.Fatalf("block size did not grow: small %d, large %d", small.BlockSize, large.BlockSize)
	}
	if small.BlockSize < MinBlockSize {
		t.Fatalf("block size %d below minimum", small.BlockSize)
	}
	// Block sizes are always MinBlockSize * 2^k.
	for _, d := range []Digest{small, large} {
		bs := d.BlockSize
		for bs > MinBlockSize {
			if bs%2 != 0 {
				t.Fatalf("block size %d is not MinBlockSize*2^k", d.BlockSize)
			}
			bs /= 2
		}
		if bs != MinBlockSize {
			t.Fatalf("block size %d is not MinBlockSize*2^k", d.BlockSize)
		}
	}
}

func TestIdenticalInputsScore100(t *testing.T) {
	data := corpus(5, 20000)
	a, b := mustHash(t, data), mustHash(t, append([]byte(nil), data...))
	if got := Compare(a, b); got != 100 {
		t.Fatalf("identical inputs score %d, want 100", got)
	}
}

func TestSimilarInputsScoreHigh(t *testing.T) {
	data := corpus(6, 40000)
	mutated := append([]byte(nil), data...)
	// Flip a handful of bytes: a tiny, localised modification.
	r := rng.New(99)
	for i := 0; i < 10; i++ {
		mutated[r.Intn(len(mutated))] ^= 0xff
	}
	a, b := mustHash(t, data), mustHash(t, mutated)
	got := Compare(a, b)
	if got < 60 {
		t.Fatalf("10-byte mutation of 40kB scores %d, want >= 60", got)
	}
}

func TestInsertionPreservesSimilarity(t *testing.T) {
	// The defining CTPH property: inserting bytes in the middle realigns
	// the chunking after the insertion point, so similarity stays high.
	data := corpus(7, 30000)
	var buf bytes.Buffer
	buf.Write(data[:15000])
	buf.WriteString("INSERTED-CONTENT-THAT-WAS-NOT-THERE-BEFORE")
	buf.Write(data[15000:])
	a, b := mustHash(t, data), mustHash(t, buf.Bytes())
	if got := Compare(a, b); got < 55 {
		t.Fatalf("mid-file insertion scores %d, want >= 55", got)
	}
}

func TestUnrelatedInputsScoreZero(t *testing.T) {
	a := mustHash(t, corpus(8, 30000))
	b := mustHash(t, corpus(9, 30000))
	if got := Compare(a, b); got != 0 {
		t.Fatalf("unrelated random inputs score %d, want 0", got)
	}
}

func TestIncompatibleBlockSizesScoreZero(t *testing.T) {
	small := mustHash(t, corpus(10, 300))
	large := mustHash(t, corpus(11, 3000000))
	if small.BlockSize*4 > large.BlockSize {
		t.Skip("inputs did not produce block sizes 4x apart")
	}
	if got := Compare(small, large); got != 0 {
		t.Fatalf("incompatible block sizes score %d, want 0", got)
	}
}

func TestCompareZeroDigest(t *testing.T) {
	d := mustHash(t, corpus(12, 1000))
	if got := Compare(d, Digest{}); got != 0 {
		t.Fatalf("comparison with zero digest = %d, want 0", got)
	}
	if got := Compare(Digest{}, Digest{}); got != 0 {
		t.Fatalf("zero-zero comparison = %d, want 0", got)
	}
}

func TestCompareSymmetric(t *testing.T) {
	r := rng.New(13)
	for i := 0; i < 20; i++ {
		base := corpus(uint64(100+i), 20000)
		mut := append([]byte(nil), base...)
		for j := 0; j < 200; j++ {
			mut[r.Intn(len(mut))]++
		}
		a, b := mustHash(t, base), mustHash(t, mut)
		if ab, ba := Compare(a, b), Compare(b, a); ab != ba {
			t.Fatalf("asymmetric score: %d vs %d", ab, ba)
		}
	}
}

func TestScoreMonotonicInMutationRate(t *testing.T) {
	base := corpus(14, 50000)
	score := func(nmut int) int {
		mut := append([]byte(nil), base...)
		r := rng.New(uint64(nmut))
		for i := 0; i < nmut; i++ {
			mut[r.Intn(len(mut))] ^= byte(i + 1)
		}
		return Compare(mustHash(t, base), mustHash(t, mut))
	}
	light := score(5)
	heavy := score(5000)
	if light <= heavy {
		t.Fatalf("light mutation (%d) should outscore heavy mutation (%d)", light, heavy)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"abc", "abc"},
		{"aaabbb", "aaabbb"},
		{"aaaa", "aaa"},
		{"aaaaaabbbbbbccc", "aaabbbccc"},
		{"xaaaaay", "xaaay"},
	}
	for _, c := range cases {
		if got := normalize(c.in); got != c.want {
			t.Errorf("normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHasCommonSubstring(t *testing.T) {
	if hasCommonSubstring("abcdefg", "hijklmn") {
		t.Error("disjoint strings reported a common substring")
	}
	if !hasCommonSubstring("xxabcdefgxx", "yyabcdefgyy") {
		t.Error("shared 7-gram not found")
	}
	if hasCommonSubstring("abcdef", "abcdef") {
		t.Error("strings shorter than the window must not match")
	}
}

func TestBlockSizeRetryOnSparseTriggers(t *testing.T) {
	// Low-entropy input: the rolling hash rarely fires at the initial
	// block-size guess, so the implementation must halve the block size
	// until the signature carries enough resolution.
	data := bytes.Repeat([]byte{0, 0, 0, 0, 1}, 20000) // 100kB, highly regular
	d := mustHash(t, data)
	naive := uint32(MinBlockSize)
	for uint64(naive)*SpamsumLength < uint64(len(data)) {
		naive *= 2
	}
	if d.BlockSize >= naive {
		t.Skipf("input produced enough triggers at the naive block size %d", naive)
	}
	if len(d.Sig1) < SpamsumLength/2 && d.BlockSize > MinBlockSize {
		t.Fatalf("retry stopped early: bs=%d sig1 len=%d", d.BlockSize, len(d.Sig1))
	}
}

func TestHashTinyInputs(t *testing.T) {
	for n := 1; n <= 32; n++ {
		data := corpus(uint64(n), n)
		d := mustHash(t, data)
		if d.BlockSize != MinBlockSize {
			t.Fatalf("n=%d: block size %d, want %d", n, d.BlockSize, MinBlockSize)
		}
		if got := Compare(d, d); got != 100 {
			t.Fatalf("n=%d: self-similarity %d", n, got)
		}
	}
}

func TestHashReaderMatchesHashBytes(t *testing.T) {
	data := corpus(15, 12345)
	fromReader, err := HashReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("HashReader: %v", err)
	}
	if fromBytes := mustHash(t, data); fromReader != fromBytes {
		t.Fatalf("reader/bytes mismatch: %v vs %v", fromReader, fromBytes)
	}
}

func TestHashStringMatchesHashBytes(t *testing.T) {
	s := strings.Repeat("the quick brown fox ", 500)
	a, err := HashString(s)
	if err != nil {
		t.Fatal(err)
	}
	if b := mustHash(t, []byte(s)); a != b {
		t.Fatalf("HashString mismatch: %v vs %v", a, b)
	}
}

func TestPreparedMatchesCompare(t *testing.T) {
	r := rng.New(16)
	digests := make([]Digest, 0, 12)
	for i := 0; i < 6; i++ {
		base := corpus(uint64(200+i), 10000+i*7000)
		digests = append(digests, mustHash(t, base))
		mut := append([]byte(nil), base...)
		for j := 0; j < 50; j++ {
			mut[r.Intn(len(mut))] ^= 0x55
		}
		digests = append(digests, mustHash(t, mut))
	}
	prepared := make([]Prepared, len(digests))
	for i, d := range digests {
		prepared[i] = Prepare(d)
	}
	for _, dist := range []DistanceFunc{DistanceDL, DistanceLevenshtein, DistanceSpamsum} {
		for i := range digests {
			for j := range digests {
				want := CompareDistance(digests[i], digests[j], dist)
				got := ComparePrepared(prepared[i], prepared[j], dist)
				if got != want {
					t.Fatalf("prepared[%d,%d] = %d, CompareDistance = %d", i, j, got, want)
				}
			}
		}
	}
}

func TestDistanceVariantsOrdering(t *testing.T) {
	// The spamsum-weighted distance penalises substitutions more, so its
	// scores can only be lower or equal for the same pair.
	base := corpus(17, 30000)
	mut := append([]byte(nil), base...)
	r := rng.New(18)
	for i := 0; i < 300; i++ {
		mut[r.Intn(len(mut))] ^= 0x0f
	}
	a, b := mustHash(t, base), mustHash(t, mut)
	dl := CompareDistance(a, b, DistanceDL)
	sp := CompareDistance(a, b, DistanceSpamsum)
	if sp > dl {
		t.Fatalf("spamsum score %d exceeds DL score %d", sp, dl)
	}
}

// Property: scores always stay within [0, 100] and self-comparison is 100.
func TestScoreRangeProperty(t *testing.T) {
	f := func(seed uint64, sizeSel uint16, nmut uint8) bool {
		size := 1000 + int(sizeSel)%60000
		base := corpus(seed, size)
		mut := append([]byte(nil), base...)
		r := rng.New(seed ^ 0xdead)
		for i := 0; i < int(nmut); i++ {
			mut[r.Intn(len(mut))] ^= 0xaa
		}
		a, err := HashBytes(base)
		if err != nil {
			return false
		}
		b, err := HashBytes(mut)
		if err != nil {
			return false
		}
		s := Compare(a, b)
		return s >= 0 && s <= 100 && Compare(a, a) == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHash64KB(b *testing.B) {
	data := corpus(30, 64*1024)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := HashBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHash1MB(b *testing.B) {
	data := corpus(31, 1024*1024)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := HashBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompareSimilar(b *testing.B) {
	base := corpus(32, 100000)
	mut := append([]byte(nil), base...)
	r := rng.New(33)
	for i := 0; i < 100; i++ {
		mut[r.Intn(len(mut))] ^= 1
	}
	d1, _ := HashBytes(base)
	d2, _ := HashBytes(mut)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(d1, d2)
	}
}

func BenchmarkComparePrepared(b *testing.B) {
	base := corpus(34, 100000)
	mut := append([]byte(nil), base...)
	r := rng.New(35)
	for i := 0; i < 100; i++ {
		mut[r.Intn(len(mut))] ^= 1
	}
	d1, _ := HashBytes(base)
	d2, _ := HashBytes(mut)
	p1, p2 := Prepare(d1), Prepare(d2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComparePrepared(p1, p2, DistanceDL)
	}
}

func BenchmarkCompareDissimilar(b *testing.B) {
	d1, _ := HashBytes(corpus(36, 100000))
	d2, _ := HashBytes(corpus(37, 100000))
	p1, p2 := Prepare(d1), Prepare(d2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComparePrepared(p1, p2, DistanceDL)
	}
}
