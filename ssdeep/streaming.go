package ssdeep

// Streaming CTPH: the single-pass, O(1)-memory form of HashBytes.
//
// CTPH cannot pick its block size until the total length is known, so a
// buffered implementation guesses from len(data) and re-hashes at
// half the block size when the signature comes out too short. A stream
// gets neither the length up front nor a second pass, so the Hasher
// maintains every candidate block size concurrently: one small context
// per size 3·2^k holding the signature accumulated at that size. Three
// observations keep that affordable:
//
//   - a trigger at block size 2b is always a trigger at block size b
//     (b divides 2b), so contexts activate lazily: context k+1 is
//     forked at context k's first trigger, at which moment its
//     piecewise hash still equals the never-reset hash of the whole
//     prefix — before that first trigger the two are indistinguishable;
//   - once context k+1 has accumulated SpamsumLength/2 signature
//     characters, the halving retry can never select block size 3·2^k
//     or below, so the smallest contexts retire as the input grows and
//     the active window stays small (~6 contexts in steady state);
//   - the double-block-size signature (Sig2, capped at 31 characters)
//     appends in lockstep with the same context's full signature until
//     the cap, so it is a prefix of the full signature — only its
//     residue hash needs tracking separately after they diverge.
//
// The result is bit-identical to HashBytes — the buffered
// implementation is retained as the differential oracle (see
// FuzzHashStreamingMatchesBytes) — for every input below 3·2^30·64
// bytes (~192 GiB), where both implementations run out of uint32 block
// sizes.

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// maxContexts bounds the candidate block sizes a Hasher tracks:
// 3·2^0 .. 3·2^30, the largest CTPH block size representable in the
// digest's uint32 field.
const maxContexts = 31

// blockCtx accumulates the signature at one candidate block size.
type blockCtx struct {
	// full holds the signature characters appended so far, up to the
	// SpamsumLength-1 cap of the buffered implementation; the residue
	// character is appended only at Sum time.
	full [SpamsumLength - 1]byte
	// flen is the populated length of full.
	flen uint8
	// h is the FNV-style piecewise chunk hash, reset after each append
	// while full is under its cap — exactly the h1 of hashAtBlockSize.
	h uint32
	// halfH tracks the double-block-size signature's residue hash after
	// it diverges from h. The half signature (Sig2 of the next-smaller
	// block size) appends in lockstep with full until it caps at
	// SpamsumLength/2-1 characters; from the following trigger on, full
	// keeps resetting h while the half hash accumulates unreset.
	halfH    uint32
	diverged bool
}

// Hasher is the streaming form of HashBytes: feed it bytes with Write
// in chunks of any size — one byte at a time included — and Sum
// produces the digest HashBytes would return for the concatenation.
// Memory use is constant regardless of input size.
//
// A Hasher must not be used concurrently from multiple goroutines.
// Writing more bytes after Sum is permitted: Sum does not reset state,
// so a later Sum covers everything written so far.
type Hasher struct {
	roll rollState
	n    uint64 // total bytes written
	// [bhstart, bhend) is the active context window. Contexts below
	// bhstart retired (their block size can no longer be selected);
	// contexts at bhend and above have never seen a trigger, so their
	// piecewise hash still equals the top context's never-reset hash.
	bhstart, bhend int
	ctx            [maxContexts]blockCtx
}

// hasherPool recycles Hasher state (a few KiB per instance) across
// requests; the serving ingestion path runs one Hasher per feature
// channel per request.
var hasherPool = sync.Pool{New: func() any { return new(Hasher) }}

// NewHasher returns a ready Hasher drawn from an internal pool. Call
// Release when done to recycle it; a forgotten Release only costs the
// garbage collector.
func NewHasher() *Hasher {
	h := hasherPool.Get().(*Hasher)
	h.Reset()
	return h
}

// Release returns the Hasher to the pool. The Hasher must not be used
// after Release.
func (h *Hasher) Release() { hasherPool.Put(h) }

// Reset returns the Hasher to its initial state.
func (h *Hasher) Reset() {
	for i := range h.ctx[:h.bhend] {
		h.ctx[i] = blockCtx{}
	}
	h.roll = rollState{}
	h.n = 0
	h.bhstart = 0
	h.bhend = 1
	h.ctx[0].h = hashInit
}

// Write absorbs p into the digest state. It never fails; the error is
// the io.Writer contract.
//
// fhc:hotpath
func (h *Hasher) Write(p []byte) (int, error) {
	for _, c := range p {
		rh := h.roll.roll(c)
		h.n++
		// Every active context absorbs the byte into its piecewise
		// hash; diverged half hashes accumulate alongside.
		for i := h.bhstart; i < h.bhend; i++ {
			ctx := &h.ctx[i]
			ctx.h = ctx.h*hashPrime ^ uint32(c)
			if ctx.diverged {
				ctx.halfH = ctx.halfH*hashPrime ^ uint32(c)
			}
		}
		// Trigger cascade, smallest active block size first: a trigger
		// at 2b implies one at b, so the first non-trigger ends it.
		bs := uint32(MinBlockSize) << h.bhstart
		for i := h.bhstart; i < h.bhend; i++ {
			if rh%bs != bs-1 {
				break
			}
			ctx := &h.ctx[i]
			if i == h.bhend-1 && h.bhend < maxContexts {
				// First trigger of the top context: fork the next block
				// size. It has never triggered (its triggers are a
				// subset of this one's), so its piecewise hash is the
				// pre-reset hash of the whole prefix — exactly ctx.h
				// right now. The loop then visits the fork with the
				// same rolling hash, cascading further if it triggers.
				h.ctx[h.bhend] = blockCtx{h: ctx.h}
				h.bhend++
			}
			if !ctx.diverged && ctx.flen >= SpamsumLength/2-1 {
				// The half signature capped at the previous trigger;
				// from here its residue hash never resets again.
				ctx.diverged = true
				ctx.halfH = ctx.h
			}
			if ctx.flen < SpamsumLength-1 {
				ctx.full[ctx.flen] = b64[ctx.h%64]
				ctx.flen++
				ctx.h = hashInit
			}
			bs *= 2
		}
	}
	// Retire block sizes the halving retry can no longer select: once
	// the input outgrew 3·2^k·SpamsumLength bytes the guess sits above
	// k, and once context k+1 holds SpamsumLength/2 characters the
	// halving loop stops at or above k+1 — both are monotone, so
	// context k is dead. (Reading ctx[bhstart+1] of a context never
	// forked sees flen 0 and keeps the window.)
	for h.bhstart < maxContexts-2 &&
		uint64(uint32(MinBlockSize)<<h.bhstart)*SpamsumLength < h.n &&
		h.ctx[h.bhstart+1].flen >= SpamsumLength/2 {
		h.bhstart++
	}
	return len(p), nil
}

// Sum returns the digest of everything written so far, bit-identical
// to HashBytes over the same bytes. It does not modify state: callers
// may keep writing, and a second Sum returns the same digest.
func (h *Hasher) Sum() (Digest, error) {
	if h.n == 0 {
		return Digest{}, ErrEmptyInput
	}
	// Initial guess, exactly as HashBytes: the smallest block size
	// whose expected signature length fits SpamsumLength.
	bi := 0
	for bi < maxContexts-1 && uint64(uint32(MinBlockSize)<<bi)*SpamsumLength < h.n {
		bi++
	}
	residue := h.roll.h1+h.roll.h2+h.roll.h3 != 0
	// The halving retry: too few trigger points at the guessed size
	// means too short a signature; drop to the next smaller block size
	// to regain resolution. bhstart is a floor by construction — a
	// context only retires once the context above it holds enough
	// characters to stop this loop.
	for bi > h.bhstart {
		l := int(h.ctx[bi].flen)
		if residue {
			l++
		}
		if l >= SpamsumLength/2 {
			break
		}
		bi--
	}

	var s1 [SpamsumLength]byte
	var s2 [SpamsumLength / 2]byte
	c1 := &h.ctx[bi]
	n1 := copy(s1[:], c1.full[:c1.flen])
	if residue {
		s1[n1] = b64[c1.h%64]
		n1++
	}
	// Sig2 is the half view of the next block size up: its first
	// SpamsumLength/2-1 characters plus its own residue hash.
	var n2 int
	if bi+1 < h.bhend {
		c2 := &h.ctx[bi+1]
		hl := int(c2.flen)
		if hl > SpamsumLength/2-1 {
			hl = SpamsumLength/2 - 1
		}
		n2 = copy(s2[:], c2.full[:hl])
		hh := c2.h
		if c2.diverged {
			hh = c2.halfH
		}
		if residue {
			s2[n2] = b64[hh%64]
			n2++
		}
	} else if residue {
		// The double block size never saw a trigger (it was never even
		// forked), so its piecewise hash is the never-reset hash of the
		// whole input — which the top context still holds.
		s2[0] = b64[h.ctx[h.bhend-1].h%64]
		n2 = 1
	}
	return Digest{
		BlockSize: uint32(MinBlockSize) << bi,
		Sig1:      string(s1[:n1]),
		Sig2:      string(s2[:n2]),
	}, nil
}

// streamBufPool recycles the chunk buffer HashReaderStreaming reads
// through, keeping the whole streaming path allocation-free per call.
var streamBufPool = sync.Pool{New: func() any {
	b := make([]byte, 64<<10)
	return &b
}}

// HashReaderStreaming computes the fuzzy digest of everything readable
// from r in a single pass with O(1) memory: non-seekable streams need
// no buffering, seekable ones no re-read. The digest is bit-identical
// to HashReader (which buffers the input for HashBytes).
func HashReaderStreaming(r io.Reader) (Digest, error) {
	h := NewHasher()
	defer h.Release()
	bp := streamBufPool.Get().(*[]byte)
	defer streamBufPool.Put(bp)
	buf := *bp
	for {
		n, err := r.Read(buf)
		if n > 0 {
			h.Write(buf[:n])
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return Digest{}, fmt.Errorf("ssdeep: reading input: %w", err)
		}
	}
	return h.Sum()
}

// HashFileStreaming computes the fuzzy digest of the named file in one
// pass without loading it into memory, bit-identical to HashFile.
func HashFileStreaming(path string) (Digest, error) {
	f, err := os.Open(path)
	if err != nil {
		return Digest{}, fmt.Errorf("ssdeep: %w", err)
	}
	defer f.Close()
	return HashReaderStreaming(f)
}
