package ssdeep

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/rng"
)

// family produces n related inputs: one base plus n-1 light mutations.
func family(t *testing.T, seed uint64, n, size int) []Digest {
	t.Helper()
	base := corpus(seed, size)
	out := make([]Digest, n)
	out[0] = mustHash(t, base)
	r := rng.New(seed ^ 0xfeed)
	for i := 1; i < n; i++ {
		mut := append([]byte(nil), base...)
		// A contiguous rewritten region grows with i: near-duplicates at
		// graded similarity, the way real file revisions behave.
		length := size / 12 * i
		start := r.Intn(len(mut) - length)
		r.Bytes(mut[start : start+length])
		out[i] = mustHash(t, mut)
	}
	return out
}

func TestIndexFindsFamily(t *testing.T) {
	ix := NewIndex()
	fam := family(t, 1, 5, 30000)
	for _, d := range fam {
		ix.Add(d)
	}
	// Unrelated noise entries.
	for i := 0; i < 30; i++ {
		ix.Add(mustHash(t, corpus(uint64(100+i), 25000)))
	}
	matches := ix.Query(fam[0], 1)
	if len(matches) < len(fam) {
		t.Fatalf("query found %d matches, want >= %d (the family)", len(matches), len(fam))
	}
	if matches[0].ID != 0 || matches[0].Score != 100 {
		t.Fatalf("best match should be the query itself: %+v", matches[0])
	}
}

func TestIndexMatchesBruteForce(t *testing.T) {
	ix := NewIndex()
	var digests []Digest
	for i := 0; i < 8; i++ {
		digests = append(digests, family(t, uint64(10+i), 3, 20000+i*3000)...)
	}
	for _, d := range digests {
		ix.Add(d)
	}
	for qi, q := range digests {
		want := map[int]int{}
		for id, d := range digests {
			if s := Compare(q, d); s > 0 {
				want[id] = s
			}
		}
		got := map[int]int{}
		for _, m := range ix.Query(q, 1) {
			got[m.ID] = m.Score
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: index found %d matches, brute force %d", qi, len(got), len(want))
		}
		for id, s := range want {
			if got[id] != s {
				t.Fatalf("query %d entry %d: index score %d, brute force %d", qi, id, got[id], s)
			}
		}
	}
}

func TestIndexMinScoreFilters(t *testing.T) {
	ix := NewIndex()
	fam := family(t, 3, 6, 40000)
	for _, d := range fam {
		ix.Add(d)
	}
	all := ix.Query(fam[0], 1)
	strict := ix.Query(fam[0], 90)
	if len(strict) >= len(all) {
		t.Fatalf("minScore did not filter: %d vs %d", len(strict), len(all))
	}
	for _, m := range strict {
		if m.Score < 90 {
			t.Fatalf("match below minScore: %+v", m)
		}
	}
}

func TestIndexSortedByScore(t *testing.T) {
	ix := NewIndex()
	for _, d := range family(t, 4, 8, 35000) {
		ix.Add(d)
	}
	matches := ix.Query(ix.Digest(0), 1)
	for i := 1; i < len(matches); i++ {
		if matches[i-1].Score < matches[i].Score {
			t.Fatal("matches not sorted by descending score")
		}
	}
}

func TestIndexEmptyAndMisses(t *testing.T) {
	ix := NewIndex()
	q := mustHash(t, corpus(50, 10000))
	if got := ix.Query(q, 1); len(got) != 0 {
		t.Fatalf("empty index returned %d matches", len(got))
	}
	ix.Add(mustHash(t, corpus(51, 10000)))
	if got := ix.Query(q, 1); len(got) != 0 {
		t.Fatalf("unrelated query matched: %+v", got)
	}
}

func TestIndexIdenticalShortDigests(t *testing.T) {
	// Identical inputs too small for 7-gram signatures must still find
	// each other through the exact-match path.
	tiny := []byte("tiny")
	d := mustHash(t, tiny)
	ix := NewIndex()
	id := ix.Add(d)
	matches := ix.Query(d, 1)
	if len(matches) != 1 || matches[0].ID != id || matches[0].Score != 100 {
		t.Fatalf("identical short digest not found: %+v", matches)
	}
}

func TestIndexDigestAccessor(t *testing.T) {
	ix := NewIndex()
	d := mustHash(t, corpus(60, 5000))
	id := ix.Add(d)
	if ix.Digest(id) != d {
		t.Fatal("Digest accessor mismatch")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestIndexRepeatedQueriesIndependent(t *testing.T) {
	ix := NewIndex()
	fam := family(t, 6, 4, 30000)
	for _, d := range fam {
		ix.Add(d)
	}
	first := ix.Query(fam[1], 1)
	second := ix.Query(fam[1], 1)
	if len(first) != len(second) {
		t.Fatalf("repeated query changed results: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("repeated query changed results at %d", i)
		}
	}
}

func TestExactKeyDistinguishesLargeBlockSizes(t *testing.T) {
	// Regression: exactKey used to encode the block size as string(rune(bs)),
	// which folds every block size beyond the valid rune range (3·2^19 and
	// up) onto U+FFFD, colliding keys across distinct block sizes.
	const bs1, bs2 = 3 << 19, 3 << 20
	a := Prepare(Digest{BlockSize: bs1, Sig1: "abc", Sig2: "de"})
	b := Prepare(Digest{BlockSize: bs2, Sig1: "abc", Sig2: "de"})
	if exactKey(a) == exactKey(b) {
		t.Fatalf("exact keys collide across block sizes %d and %d", bs1, bs2)
	}
	ix := NewIndex()
	ix.Add(Digest{BlockSize: bs1, Sig1: "abc", Sig2: "de"})
	ix.Add(Digest{BlockSize: bs2, Sig1: "abc", Sig2: "de"})
	if len(ix.exact) != 2 {
		t.Fatalf("exact map has %d buckets, want 2 (one per block size)", len(ix.exact))
	}
}

// groupedCorpus indexes families of related digests, each family owning
// one group, and returns the digests with their group assignment.
func groupedCorpus(t *testing.T, ix *Index, nGroups, perGroup, size int) ([]Digest, []int) {
	t.Helper()
	var digests []Digest
	var groups []int
	for g := 0; g < nGroups; g++ {
		for _, d := range family(t, uint64(20+g), perGroup, size+g*2000) {
			ix.AddGroup(d, g)
			digests = append(digests, d)
			groups = append(groups, g)
		}
	}
	return digests, groups
}

func TestQueryGroupsMatchesBruteForce(t *testing.T) {
	for _, dist := range []DistanceFunc{DistanceDL, DistanceLevenshtein, DistanceSpamsum} {
		ix := NewIndex()
		const nGroups = 5
		digests, groups := groupedCorpus(t, ix, nGroups, 4, 20000)
		for qi, q := range digests {
			want := make([]int, nGroups)
			for i, d := range digests {
				if s := CompareDistance(q, d, dist); s > want[groups[i]] {
					want[groups[i]] = s
				}
			}
			got := ix.QueryGroupsDistance(q, nGroups, dist)
			for g := range want {
				if got[g] != want[g] {
					t.Fatalf("query %d group %d: index score %d, brute force %d", qi, g, got[g], want[g])
				}
			}
		}
	}
}

func TestQueryGroupsEmptyGroups(t *testing.T) {
	ix := NewIndex()
	q := mustHash(t, corpus(80, 20000))
	// Empty index: every group scores zero.
	for g, s := range ix.QueryGroups(q, 3) {
		if s != 0 {
			t.Fatalf("empty index scored %d for group %d", s, g)
		}
	}
	// Entries exist but only in group 0; groups 1 and 2 stay empty.
	ix.AddGroup(q, 0)
	got := ix.QueryGroups(q, 3)
	if got[0] != 100 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("QueryGroups = %v, want [100 0 0]", got)
	}
	// Zero or negative groups requested: empty result, no panic.
	if got := ix.QueryGroups(q, 0); len(got) != 0 {
		t.Fatalf("QueryGroups with 0 groups returned %v", got)
	}
	if got := ix.QueryGroups(q, -1); len(got) != 0 {
		t.Fatalf("QueryGroups with -1 groups returned %v", got)
	}
	// A zero query digest scores nothing anywhere.
	for g, s := range ix.QueryGroups(Digest{}, 3) {
		if s != 0 {
			t.Fatalf("zero digest scored %d for group %d", s, g)
		}
	}
}

func TestQueryGroupsShortSignatures(t *testing.T) {
	// Digests of tiny inputs carry no 7-gram; the exact-match path must
	// still credit the owning group, and only it, with 100.
	d := mustHash(t, []byte("tiny"))
	other := mustHash(t, []byte("x"))
	ix := NewIndex()
	ix.AddGroup(d, 1)
	ix.AddGroup(other, 0)
	got := ix.QueryGroups(d, 2)
	if got[0] != 0 || got[1] != 100 {
		t.Fatalf("QueryGroups = %v, want [0 100]", got)
	}
}

func TestQueryGroupsIgnoresUngroupedEntries(t *testing.T) {
	ix := NewIndex()
	d := mustHash(t, corpus(81, 20000))
	ix.Add(d) // no owner group
	for g, s := range ix.QueryGroups(d, 2) {
		if s != 0 {
			t.Fatalf("ungrouped entry scored %d for group %d", s, g)
		}
	}
	if ix.Group(0) != NoGroup {
		t.Fatalf("Group(0) = %d, want NoGroup", ix.Group(0))
	}
}

func TestIndexConcurrentQueries(t *testing.T) {
	ix := NewIndex()
	const nGroups = 4
	digests, _ := groupedCorpus(t, ix, nGroups, 4, 25000)
	type result struct {
		matches []Match
		scores  []int
	}
	serial := make([]result, len(digests))
	for i, d := range digests {
		serial[i] = result{ix.Query(d, 1), ix.QueryGroups(d, nGroups)}
	}
	var wg sync.WaitGroup
	errs := make(chan string, len(digests))
	for i, d := range digests {
		wg.Add(1)
		go func(i int, d Digest) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				m := ix.Query(d, 1)
				g := ix.QueryGroups(d, nGroups)
				if !reflect.DeepEqual(m, serial[i].matches) || !reflect.DeepEqual(g, serial[i].scores) {
					errs <- "concurrent query diverged from serial result"
					return
				}
			}
		}(i, d)
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}

func BenchmarkIndexQuery1000(b *testing.B) {
	ix := NewIndex()
	r := rng.New(1)
	base := corpus(70, 30000)
	for i := 0; i < 1000; i++ {
		mut := append([]byte(nil), base...)
		for j := 0; j < 50+i*5; j++ {
			mut[r.Intn(len(mut))] ^= byte(j)
		}
		d, err := HashBytes(mut)
		if err != nil {
			b.Fatal(err)
		}
		ix.Add(d)
	}
	q, _ := HashBytes(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(q, 50)
	}
}

func BenchmarkIndexAdd(b *testing.B) {
	digests := make([]Digest, 256)
	for i := range digests {
		var err error
		digests[i], err = HashBytes(corpus(uint64(i), 20000))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := NewIndex()
		for _, d := range digests {
			ix.Add(d)
		}
	}
}
