package ssdeep

import "sort"

// Index is a similarity-search structure over many fuzzy digests.
// Entries are bucketed by block size, and each bucket keeps an inverted
// index from rolling 7-gram hashes to entry ids. Because a non-zero
// similarity score requires a shared 7-gram in the compared signature
// pair (the common-substring gate), every digest scoring above zero
// against the query shares at least one posting list with it — so a query
// touches only genuine candidates instead of the whole corpus.
//
// This is the digest-matching mode of the original ssdeep tool,
// generalised to an in-memory structure. The classifier's profile
// featurisation has its own per-class layout; Index serves corpus-level
// queries: near-duplicate discovery, cross-class label auditing
// (the paper's CellRanger vs Cell-Ranger case) and ad-hoc lookups.
type Index struct {
	entries []Prepared
	digests []Digest
	// buckets maps block size -> gram hash -> entry ids. For each entry
	// both signatures are indexed: Sig1 under its block size and Sig2
	// under twice that, mirroring how comparison pairs signatures.
	buckets map[uint32]map[uint32][]int32
	// exact maps the normalised digest string to ids, covering identical
	// digests whose signatures are too short to carry any 7-gram.
	exact map[string][]int32
	// stamp supports O(1) candidate deduplication per query.
	stamp   []uint32
	queryID uint32
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		buckets: make(map[uint32]map[uint32][]int32),
		exact:   make(map[string][]int32),
	}
}

// Len returns the number of indexed digests.
func (ix *Index) Len() int { return len(ix.entries) }

// Digest returns the id-th indexed digest.
func (ix *Index) Digest(id int) Digest { return ix.digests[id] }

// Add indexes d and returns its id.
func (ix *Index) Add(d Digest) int {
	id := int32(len(ix.entries))
	p := Prepare(d)
	ix.entries = append(ix.entries, p)
	ix.digests = append(ix.digests, d)
	ix.stamp = append(ix.stamp, 0)

	ix.post(p.BlockSize, p.sig1, id)
	ix.post(2*p.BlockSize, p.sig2, id)
	key := exactKey(p)
	ix.exact[key] = append(ix.exact[key], id)
	return int(id)
}

// post adds every 7-gram of sig to the bucket of size bs.
func (ix *Index) post(bs uint32, sig string, id int32) {
	if len(sig) < rollingWindow {
		return
	}
	bucket := ix.buckets[bs]
	if bucket == nil {
		bucket = make(map[uint32][]int32)
		ix.buckets[bs] = bucket
	}
	seen := map[uint32]bool{}
	for _, h := range gramHashes(sig, nil) {
		if seen[h] {
			continue // one posting per distinct gram per entry
		}
		seen[h] = true
		bucket[h] = append(bucket[h], id)
	}
}

func exactKey(p Prepared) string {
	return p.sig1 + "\x00" + p.sig2 + "\x00" + string(rune(p.BlockSize))
}

// Match is one similarity-search hit.
type Match struct {
	// ID identifies the indexed digest.
	ID int
	// Score is the 0-100 similarity to the query.
	Score int
}

// Query returns every indexed digest whose similarity to d is at least
// minScore (> 0), sorted by descending score then ascending id, using the
// default Damerau–Levenshtein scoring.
func (ix *Index) Query(d Digest, minScore int) []Match {
	return ix.QueryDistance(d, minScore, DistanceDL)
}

// QueryDistance is Query with an explicit signature distance.
func (ix *Index) QueryDistance(d Digest, minScore int, dist DistanceFunc) []Match {
	if minScore < 1 {
		minScore = 1
	}
	q := Prepare(d)
	ix.queryID++
	mark := ix.queryID

	var out []Match
	consider := func(id int32) {
		if ix.stamp[id] == mark {
			return
		}
		ix.stamp[id] = mark
		if score := ComparePrepared(q, ix.entries[id], dist); score >= minScore {
			out = append(out, Match{ID: int(id), Score: score})
		}
	}

	// Candidate generation: pair each query signature with the bucket it
	// would be compared against. Sig1 lives at BlockSize, Sig2 at twice
	// that; comparison crosses buckets exactly when block sizes differ by
	// a factor of two, which the bucket keys already encode.
	ix.collect(q.BlockSize, q.grams1, consider)
	ix.collect(2*q.BlockSize, q.grams2, consider)
	for _, id := range ix.exact[exactKey(q)] {
		consider(id)
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// collect feeds every entry sharing a gram with the query signature in
// the given bucket to consider.
func (ix *Index) collect(bs uint32, grams []uint32, consider func(int32)) {
	bucket := ix.buckets[bs]
	if bucket == nil {
		return
	}
	for _, h := range grams {
		for _, id := range bucket[h] {
			consider(id)
		}
	}
}
