package ssdeep

import (
	"math"
	"sort"
	"strconv"
	"sync"
)

// NoGroup marks an index entry that belongs to no owner group; grouped
// queries skip it.
const NoGroup = -1

// Index is a similarity-search structure over many fuzzy digests.
// Entries are bucketed by block size, and each bucket keeps an inverted
// index from rolling 7-gram hashes to entry ids. Because a non-zero
// similarity score requires a shared 7-gram in the compared signature
// pair (the common-substring gate), every digest scoring above zero
// against the query shares at least one posting list with it — so a query
// touches only genuine candidates instead of the whole corpus.
//
// This is the digest-matching mode of the original ssdeep tool,
// generalised to an in-memory structure. Index serves two workloads:
// corpus-level queries (near-duplicate discovery, cross-class label
// auditing — the paper's CellRanger vs Cell-Ranger case — and ad-hoc
// lookups) via Query, and the classifier's profile featurisation via
// grouped queries: entries added with AddGroup carry an owner-group id,
// and QueryGroupsDistance returns the best score per group in one pass
// over the candidates.
//
// An Index is safe for concurrent queries; Add/AddGroup must not run
// concurrently with queries or each other.
type Index struct {
	entries []Prepared
	digests []Digest
	// groups holds the owner-group id of each entry, NoGroup if none.
	groups []int32
	// buckets maps block size -> gram hash -> posting list. For each entry
	// both signatures are indexed: Sig1 under its block size and Sig2
	// under twice that, mirroring how comparison pairs signatures.
	// Posting lists are delta-encoded varints (see postings): entry ids
	// are appended in ascending order, so most postings cost one byte
	// instead of four and a bucket scan walks a dense byte run.
	buckets map[uint32]map[uint32]*postings
	// exact maps the normalised digest string to ids, covering identical
	// digests whose signatures are too short to carry any 7-gram.
	exact map[string][]int32
	// scratchPool recycles per-query visited-entry stamps, keeping
	// candidate deduplication O(1) without serialising queries.
	scratchPool sync.Pool
}

// postings is one gram's compressed entry-id list: ascending ids stored
// as uvarint deltas from the previous id (the first delta is taken from
// -1, so id 0 encodes as 1). Appends come from AddGroup in strictly
// ascending entry order, which both guarantees positive deltas and makes
// same-entry deduplication a single comparison against last.
type postings struct {
	data []byte
	last int32
}

// add appends id unless it is already the most recent posting (the same
// entry posting the same gram hash twice within one signature).
func (p *postings) add(id int32) {
	if len(p.data) > 0 && p.last == id {
		return
	}
	delta := uint32(id - p.last)
	p.last = id
	for delta >= 0x80 {
		p.data = append(p.data, byte(delta)|0x80)
		delta >>= 7
	}
	p.data = append(p.data, byte(delta))
}

// each streams the decoded entry ids to consider in ascending order. The
// varint decode runs inline over the byte run — no scratch slice, no
// allocation, one sequential scan.
//
// fhc:hotpath
func (p *postings) each(consider func(int32)) {
	cur := int32(-1)
	var acc uint32
	var shift uint
	for _, b := range p.data {
		acc |= uint32(b&0x7f) << shift
		if b < 0x80 {
			cur += int32(acc)
			consider(cur)
			acc, shift = 0, 0
		} else {
			shift += 7
		}
	}
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		buckets: make(map[uint32]map[uint32]*postings),
		exact:   make(map[string][]int32),
	}
}

// Len returns the number of indexed digests.
func (ix *Index) Len() int { return len(ix.entries) }

// Digest returns the id-th indexed digest.
func (ix *Index) Digest(id int) Digest { return ix.digests[id] }

// Group returns the owner-group id of the id-th entry, NoGroup if none.
func (ix *Index) Group(id int) int { return int(ix.groups[id]) }

// Add indexes d with no owner group and returns its id.
func (ix *Index) Add(d Digest) int {
	return ix.AddGroup(d, NoGroup)
}

// AddGroup indexes d under the owner group id group (NoGroup for none)
// and returns its entry id. Grouped queries report, per group, the best
// score over the entries owned by that group.
func (ix *Index) AddGroup(d Digest, group int) int {
	if group < NoGroup || group > math.MaxInt32 {
		panic("ssdeep: group id out of range")
	}
	id := int32(len(ix.entries))
	p := Prepare(d)
	ix.entries = append(ix.entries, p)
	ix.digests = append(ix.digests, d)
	ix.groups = append(ix.groups, int32(group))

	ix.post(p.BlockSize, p.grams1, id)
	ix.post(2*p.BlockSize, p.grams2, id)
	key := exactKey(p)
	ix.exact[key] = append(ix.exact[key], id)
	return int(id)
}

// post adds every 7-gram hash of one prepared signature (as computed by
// Prepare) to the bucket of size bs. One posting per distinct gram per
// entry: ids only grow across calls, so a repeated gram hash within this
// signature is exactly a list whose last posting is already id, and
// postings.add drops it.
func (ix *Index) post(bs uint32, grams []uint32, id int32) {
	if len(grams) == 0 {
		return
	}
	bucket := ix.buckets[bs]
	if bucket == nil {
		bucket = make(map[uint32]*postings)
		ix.buckets[bs] = bucket
	}
	for _, h := range grams {
		pl := bucket[h]
		if pl == nil {
			pl = &postings{last: -1}
			bucket[h] = pl
		}
		pl.add(id)
	}
}

// exactKey renders the comparison-relevant state of a digest as a map
// key. The block size is encoded in decimal: converting it through
// string(rune(...)) would fold every block size beyond the valid rune
// range (3·2^19 and up) onto U+FFFD, colliding keys across distinct
// block sizes. Signatures never contain NUL, so "\x00" separates
// unambiguously.
func exactKey(p Prepared) string {
	return strconv.FormatUint(uint64(p.BlockSize), 10) + "\x00" + p.sig1 + "\x00" + p.sig2
}

// queryScratch is the per-query candidate-deduplication state: an entry
// is considered at most once per query when its stamp equals the query's
// mark.
type queryScratch struct {
	stamp []uint32
	mark  uint32
}

// scratch leases deduplication state sized to the current entry count.
// Callers return it with ix.scratchPool.Put when the query is done.
func (ix *Index) scratch() *queryScratch {
	s, _ := ix.scratchPool.Get().(*queryScratch)
	if s == nil {
		s = &queryScratch{}
	}
	if len(s.stamp) < len(ix.entries) {
		s.stamp = make([]uint32, len(ix.entries))
		s.mark = 0
	}
	s.mark++
	if s.mark == 0 { // mark wrapped: stamps are ambiguous, reset them
		clear(s.stamp)
		s.mark = 1
	}
	return s
}

// Match is one similarity-search hit.
type Match struct {
	// ID identifies the indexed digest.
	ID int
	// Score is the 0-100 similarity to the query.
	Score int
}

// Query returns every indexed digest whose similarity to d is at least
// minScore (> 0), sorted by descending score then ascending id, using the
// default Damerau–Levenshtein scoring.
func (ix *Index) Query(d Digest, minScore int) []Match {
	return ix.QueryDistance(d, minScore, DistanceDL)
}

// QueryDistance is Query with an explicit signature distance.
func (ix *Index) QueryDistance(d Digest, minScore int, dist DistanceFunc) []Match {
	return ix.QueryPreparedDistance(Prepare(d), minScore, dist)
}

// QueryPreparedDistance is QueryDistance over an already-prepared query
// digest, sparing repeated callers the preparation cost.
func (ix *Index) QueryPreparedDistance(q Prepared, minScore int, dist DistanceFunc) []Match {
	if minScore < 1 {
		minScore = 1
	}
	s := ix.scratch()
	defer ix.scratchPool.Put(s)

	var out []Match
	ix.visit(q, s, func(id int32) {
		if score := ComparePrepared(q, ix.entries[id], dist); score >= minScore {
			out = append(out, Match{ID: int(id), Score: score})
		}
	})

	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// QueryGroups returns, for each owner group in [0, numGroups), the best
// similarity between d and any entry of that group, using the default
// Damerau–Levenshtein scoring. Groups with no entry sharing a 7-gram
// (or exact match) with d score 0 — exactly what a full scan would
// report, since the common-substring gate zeroes every skipped pair.
func (ix *Index) QueryGroups(d Digest, numGroups int) []int {
	return ix.QueryGroupsDistance(d, numGroups, DistanceDL)
}

// QueryGroupsDistance is QueryGroups with an explicit signature distance.
func (ix *Index) QueryGroupsDistance(d Digest, numGroups int, dist DistanceFunc) []int {
	return ix.QueryGroupsPrepared(Prepare(d), numGroups, dist)
}

// QueryGroupsPrepared is QueryGroupsDistance over an already-prepared
// query digest. The hot path of classifier featurisation: one call per
// (sample, feature kind) replaces a scan of every training digest of
// every class, and the digest is prepared once instead of once per class.
func (ix *Index) QueryGroupsPrepared(q Prepared, numGroups int, dist DistanceFunc) []int {
	if numGroups <= 0 {
		return nil
	}
	out := make([]int, numGroups)
	if q.IsZero() {
		return out
	}
	s := ix.scratch()
	defer ix.scratchPool.Put(s)

	ix.visit(q, s, func(id int32) {
		g := ix.groups[id]
		if g < 0 || int(g) >= numGroups || out[g] == 100 {
			return
		}
		if score := ComparePrepared(q, ix.entries[id], dist); score > out[g] {
			out[g] = score
		}
	})
	return out
}

// visit feeds every candidate entry for q — gram-sharing entries in the
// comparable block-size buckets plus exact-digest matches — to consider,
// each at most once.
//
// fhc:hotpath
func (ix *Index) visit(q Prepared, s *queryScratch, consider func(int32)) {
	once := func(id int32) {
		if s.stamp[id] == s.mark {
			return
		}
		s.stamp[id] = s.mark
		consider(id)
	}
	// Candidate generation: pair each query signature with the bucket it
	// would be compared against. Sig1 lives at BlockSize, Sig2 at twice
	// that; comparison crosses buckets exactly when block sizes differ by
	// a factor of two, which the bucket keys already encode.
	ix.collect(q.BlockSize, q.grams1, once)
	ix.collect(2*q.BlockSize, q.grams2, once)
	for _, id := range ix.exact[exactKey(q)] {
		once(id)
	}
}

// collect feeds every entry sharing a gram with the query signature in
// the given bucket to consider, decoding each compressed posting list in
// one sequential pass.
//
// fhc:hotpath
func (ix *Index) collect(bs uint32, grams []uint32, consider func(int32)) {
	bucket := ix.buckets[bs]
	if bucket == nil {
		return
	}
	for _, h := range grams {
		if pl := bucket[h]; pl != nil {
			pl.each(consider)
		}
	}
}
