package fhc

// Integration tests exercising the public API end to end, the way the
// examples and a downstream user would.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildDemoSamples generates a small corpus through the public API.
func buildDemoSamples(t *testing.T) []Sample {
	t.Helper()
	specs := []ClassSpec{
		{Name: "GenomeAsm", Samples: 10},
		{Name: "FluidSolver", Samples: 10},
		{Name: "ChemKit", Samples: 10},
		{Name: "Miner", Samples: 6, Unknown: true},
	}
	corpus, err := GenerateCorpus(specs, CorpusOptions{Seed: 11})
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	samples, err := SamplesFromCorpus(corpus, 0)
	if err != nil {
		t.Fatalf("SamplesFromCorpus: %v", err)
	}
	return samples
}

func TestPublicAPIEndToEnd(t *testing.T) {
	samples := buildDemoSamples(t)
	split, err := SplitTwoPhase(samples, SplitOptions{Mode: PaperSplit, Seed: 3})
	if err != nil {
		t.Fatalf("SplitTwoPhase: %v", err)
	}
	var train, test []Sample
	for _, i := range split.TrainIdx {
		train = append(train, samples[i])
	}
	for _, i := range split.TestIdx {
		test = append(test, samples[i])
	}
	clf, err := Train(train, Config{Threshold: 0.35, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	report, err := clf.Evaluate(test)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if report.Accuracy < 0.6 {
		t.Fatalf("end-to-end accuracy %.3f too low\n%s", report.Accuracy, report.Format())
	}
	// Model round trip through the public API.
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for i := range test {
		if a, b := clf.Classify(&test[i]), loaded.Classify(&test[i]); a.Label != b.Label {
			t.Fatalf("prediction changed after save/load at %d", i)
		}
	}
}

func TestPublicAPIFileWorkflow(t *testing.T) {
	// Write a corpus tree, scan it back, classify a file loaded from disk.
	specs := []ClassSpec{
		{Name: "AppX", Samples: 8},
		{Name: "AppY", Samples: 8},
	}
	corpus, err := GenerateCorpus(specs, CorpusOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := corpus.WriteTree(dir); err != nil {
		t.Fatal(err)
	}
	samples, err := ScanTree(dir, 0)
	if err != nil {
		t.Fatalf("ScanTree: %v", err)
	}
	if len(samples) != len(corpus.Samples) {
		t.Fatalf("scanned %d samples, want %d", len(samples), len(corpus.Samples))
	}
	clf, err := Train(samples, Config{Threshold: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Classify one binary through the file-based entry point.
	s := corpus.Samples[0]
	path := filepath.Join(dir, s.Path())
	probe, err := SampleFromFile("", "", s.Exe, path)
	if err != nil {
		t.Fatalf("SampleFromFile: %v", err)
	}
	pred := clf.Classify(&probe)
	if pred.Label != s.Class {
		t.Fatalf("training binary classified as %q (conf %.2f), want %q", pred.Label, pred.Confidence, s.Class)
	}
	// Save to a file and reload through LoadFile.
	modelPath := filepath.Join(dir, "model.json")
	f, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(modelPath)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got := loaded.Classify(&probe); got.Label != s.Class {
		t.Fatalf("reloaded model classified %q, want %q", got.Label, s.Class)
	}
}

func TestPaperManifestExported(t *testing.T) {
	specs := PaperManifest()
	if len(specs) != 92 {
		t.Fatalf("PaperManifest has %d classes, want 92", len(specs))
	}
	small := SmallManifest(5, 2, 10)
	if len(small) != 7 {
		t.Fatalf("SmallManifest has %d classes, want 7", len(small))
	}
	if DefaultGrid() == nil {
		t.Fatal("DefaultGrid returned nil")
	}
}

func TestClassificationReportExported(t *testing.T) {
	r, err := ClassificationReport([]string{"a", "b"}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy != 1 {
		t.Fatalf("accuracy = %v", r.Accuracy)
	}
}

func TestSampleFromBinaryRejectsJunk(t *testing.T) {
	if _, err := SampleFromBinary("c", "v", "x", []byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
}

// TestPublicAPIContinuousLearning drives the continuous-learning loop
// through the public facade: an engine serving a model that does not
// know one class, harvesting of confident predictions and operator
// labels, a synchronous cycle, and the gated zero-downtime promotion.
func TestPublicAPIContinuousLearning(t *testing.T) {
	samples := buildDemoSamples(t)
	var known []Sample
	for _, s := range samples {
		if s.Class != "ChemKit" && s.Class != "Miner" {
			known = append(known, s)
		}
	}
	clf, err := Train(known, Config{Seed: 1, Threshold: 0.5})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	engine := NewEngine(clf, EngineOptions{})
	defer engine.Close()

	rt, err := NewRetrainer(engine, clf, RetrainOptions{
		Store:         RetrainStoreOptions{Cap: len(samples)},
		MinNewSamples: -1, // explicit cycles only
		MinConfidence: 0.5,
		Margin:        0.05,
		Train:         Config{Seed: 1, Threshold: 0.5},
	})
	if err != nil {
		t.Fatalf("NewRetrainer: %v", err)
	}
	defer rt.Close()

	for i := range samples {
		s := samples[i]
		if s.Class == "ChemKit" {
			rt.HarvestLabeled(&s, s.Class) // operator-confirmed ground truth
			continue
		}
		if s.Class == "Miner" {
			continue // stays foreign: nobody labels it
		}
		rt.ObservePrediction(&s, engine.Classify(&s))
	}

	res := rt.RunNow("kick")
	if res.Err != "" || !res.Promoted {
		t.Fatalf("cycle did not promote: %+v", res)
	}
	if engine.Stats().Swaps != 1 {
		t.Fatalf("swaps = %d, want 1", engine.Stats().Swaps)
	}
	correct := 0
	total := 0
	for i := range samples {
		if samples[i].Class != "ChemKit" {
			continue
		}
		total++
		s := samples[i]
		if engine.Classify(&s).Label == "ChemKit" {
			correct++
		}
	}
	if correct*2 < total {
		t.Fatalf("promoted model recognises %d/%d ChemKit samples", correct, total)
	}
	st := rt.Stats()
	if st.Promotions != 1 || st.Last == nil {
		t.Fatalf("stats = %+v", st)
	}
}
