// Command fhc is the Fuzzy Hash Classifier command-line tool: it
// generates synthetic corpora, computes and compares fuzzy hashes, trains
// classifiers on install trees and labels executables — the workflow of
// the reproduced paper's Figure 1.
//
// Usage:
//
//	fhc corpus   -out DIR [-scale small|medium|paper] [-seed N] [-stripped F]
//	fhc hash     FILE...
//	fhc compare  [-distance NAME] FILE_A FILE_B
//	fhc strings  FILE
//	fhc nm       FILE
//	fhc ldd      FILE
//	fhc scan     [-json FILE] DIR
//	fhc train    (-corpus DIR | -samples FILE) -model FILE [-kind rf|knn|svm] [-threshold T] [-seed N] [-grid]
//	fhc classify -model FILE BINARY...
//	fhc report   -corpus DIR -model FILE [-format text|csv|md]
//	fhc dups     [-min SCORE] [-feature NAME] [-within] DIR
//	fhc serve    -model FILE [-policy FILE] [-input FILE|none] [-http ADDR] [-batch N] [-latency D] [-cache N] [-stats] [-retrain ...]
//	fhc route    -worker NAME=URL ... [-listen ADDR] [-hedge-after D] [-incumbent FILE] [-watch DIR]
//
// route fronts a fleet of serve -http workers with the consistent-hash
// router (internal/cluster): every binary's featurisation and cache
// affinity lands on one shard, slow shards are hedged, dead shards are
// ejected and retried around, and -incumbent/-watch drive staged model
// rollouts (canary, gate, expand, rollback) across the whole fleet.
//
// serve accepts {"reload":"FILE"} control lines that hot-swap a
// retrained model into the running engine with zero downtime, and with
// -http ADDR additionally exposes the engine over HTTP: classify,
// batch-classify, model-swap, retrain, health and Prometheus metrics
// endpoints (see internal/httpserve). With -retrain the service learns
// continuously: confident predictions are harvested into a bounded
// training store, background cycles retrain on the -retrain-every /
// -retrain-interval trigger policy, and candidates that pass the
// holdout gate are hot-swapped in automatically (see internal/retrain
// and OPERATIONS.md).
package main

import (
	"fmt"
	"os"
)

// command describes one subcommand.
type command struct {
	name, synopsis string
	run            func(args []string) error
}

// extraCommands collects subcommands registered from other files.
var extraCommands []command

func commands() []command {
	return append([]command{
		{"corpus", "generate a synthetic application corpus tree", cmdCorpus},
		{"hash", "print the fuzzy digests of executables", cmdHash},
		{"compare", "compare the fuzzy digests of two executables", cmdCompare},
		{"strings", "print the strings(1) view of an executable", cmdStrings},
		{"nm", "print the nm(1) global-symbol view of an executable", cmdNM},
		{"ldd", "print the DT_NEEDED libraries of an executable", cmdLDD},
		{"scan", "extract features from an install tree", cmdScan},
		{"train", "train a classifier on a labelled install tree", cmdTrain},
		{"classify", "label executables with a trained model", cmdClassify},
		{"report", "evaluate a model against a labelled install tree", cmdReport},
	}, extraCommands...)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	for _, c := range commands() {
		if c.name == name {
			if err := c.run(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "fhc %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "fhc: unknown command %q\n\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "fhc — Fuzzy Hash Classifier for HPC application executables")
	fmt.Fprintln(os.Stderr, "\nCommands:")
	for _, c := range commands() {
		fmt.Fprintf(os.Stderr, "  %-9s %s\n", c.name, c.synopsis)
	}
	fmt.Fprintln(os.Stderr, "\nRun 'fhc COMMAND -h' for command flags.")
}
