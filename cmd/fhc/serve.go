package main

// The serve subcommand runs the paper's Figure 1 workflow as an
// always-on service: job events arrive as JSON lines, each naming an
// executable by path or carrying its content inline; the collector
// deduplicates extraction by exact hash, the serving engine micro-batches
// classification behind a prediction cache, and the monitor applies
// allocation policy. One prediction (plus findings) is emitted per event,
// as JSON lines, in input order.
//
// Event input, one JSON object per line:
//
//	{"job_id":"1","user":"alice","account":"bio-1","job_name":"run",
//	 "exe":"blastn","path":"/tmp/blastn"}
//	{"job_id":"2","user":"bob","exe":"a.out","binary_b64":"f0VMRg..."}
//
// A control line hot-swaps a retrained model with zero downtime — the
// stream keeps flowing, and no prediction cached under the old model is
// ever served again:
//
//	{"reload":"/models/fhc-2026-07.json"}
//
// Policy file (optional, -policy):
//
//	{"allowed_by_account":{"bio-1":["BLAST"]},"blocklist":["XMRig"]}

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/monitor"
	"repro/internal/serve"
)

func init() {
	extraCommands = append(extraCommands, command{
		"serve", "classify a stream of job events through the batching engine", cmdServe,
	})
}

// serveEvent is one JSON-lines job event. A line carrying Reload is a
// control event: the named model file is loaded and hot-swapped into
// the engine between stream windows.
type serveEvent struct {
	JobID     string `json:"job_id"`
	User      string `json:"user"`
	Account   string `json:"account"`
	JobName   string `json:"job_name"`
	Exe       string `json:"exe"`
	Path      string `json:"path,omitempty"`
	BinaryB64 string `json:"binary_b64,omitempty"`
	Reload    string `json:"reload,omitempty"`
}

// serveResult is one JSON-lines prediction (or reload acknowledgement,
// distinguished by its "reloaded" field).
type serveResult struct {
	JobID      string         `json:"job_id"`
	Label      string         `json:"label,omitempty"`
	Class      string         `json:"class,omitempty"`
	Confidence float64        `json:"confidence,omitempty"`
	Cached     bool           `json:"cached,omitempty"`
	Findings   []serveFinding `json:"findings,omitempty"`
	Reloaded   string         `json:"reloaded,omitempty"`
	ModelKind  string         `json:"model_kind,omitempty"`
	Error      string         `json:"error,omitempty"`
}

type serveFinding struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// servePolicy is the on-disk policy format.
type servePolicy struct {
	AllowedByAccount map[string][]string `json:"allowed_by_account"`
	Blocklist        []string            `json:"blocklist"`
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelPath := fs.String("model", "", "model file (required)")
	policyPath := fs.String("policy", "", "JSON policy file (optional)")
	input := fs.String("input", "-", "event stream: a JSON-lines file, or - for stdin")
	batch := fs.Int("batch", 0, "micro-batch window size (0 = engine default)")
	latency := fs.Duration("latency", 0, "micro-batch latency bound (0 = engine default)")
	workers := fs.Int("workers", 0, "concurrent batch executors (0 = engine default)")
	cacheSize := fs.Int("cache", 0, "prediction-cache entries (0 = default, negative disables)")
	chunk := fs.Int("chunk", 256, "events observed per window; bounds memory and goroutines")
	stats := fs.Bool("stats", false, "print engine and collector statistics to stderr at EOF")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return errors.New("-model is required")
	}
	if *chunk < 1 {
		return errors.New("-chunk must be at least 1")
	}

	clf, err := loadModel(*modelPath)
	if err != nil {
		return err
	}

	var policy monitor.Policy
	if *policyPath != "" {
		raw, err := os.ReadFile(*policyPath)
		if err != nil {
			return err
		}
		var sp servePolicy
		if err := json.Unmarshal(raw, &sp); err != nil {
			return fmt.Errorf("policy %s: %w", *policyPath, err)
		}
		policy = monitor.Policy{AllowedByAccount: sp.AllowedByAccount, Blocklist: sp.Blocklist}
	}

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	engine := serve.New(clf, serve.Options{
		BatchSize:    *batch,
		MaxLatency:   *latency,
		Workers:      *workers,
		CacheEntries: *cacheSize,
	})
	defer engine.Close()
	mon := monitor.New(engine, policy)
	coll := collector.New(collector.Options{})
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)

	// One window of decoded events, flushed through ObserveAll so the
	// engine sees the whole burst at once. Events that failed collection
	// keep a result slot (obsIndex -1) so output order matches input
	// order.
	var pending []monitor.Event
	var results []serveResult
	var obsIndex []int
	var cachedFlags []bool
	flush := func() error {
		var obs []monitor.Observation
		if len(pending) > 0 {
			obs = mon.ObserveAll(pending)
		}
		for i := range results {
			if j := obsIndex[i]; j >= 0 {
				o := obs[j]
				results[i].Label = o.Prediction.Label
				results[i].Class = o.Prediction.Class
				results[i].Confidence = o.Prediction.Confidence
				results[i].Cached = cachedFlags[j]
				for _, f := range o.Findings {
					results[i].Findings = append(results[i].Findings, serveFinding{
						Kind: f.Kind.String(), Message: f.Message,
					})
				}
			}
			if err := enc.Encode(&results[i]); err != nil {
				return err
			}
		}
		pending, results = pending[:0], results[:0]
		obsIndex, cachedFlags = obsIndex[:0], cachedFlags[:0]
		return out.Flush()
	}

	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 1<<20), 64<<20) // inline binaries are large
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev serveEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			results = append(results, serveResult{JobID: ev.JobID,
				Error: fmt.Sprintf("line %d: %v", lineNo, err)})
			obsIndex = append(obsIndex, -1)
			continue
		}
		if ev.Reload != "" {
			// Control line: hot-swap the model. A line mixing control and
			// job fields is a producer bug — rejecting it beats silently
			// dropping the job's prediction.
			if ev.JobID != "" || ev.Path != "" || ev.BinaryB64 != "" || ev.Exe != "" ||
				ev.User != "" || ev.Account != "" || ev.JobName != "" {
				results = append(results, serveResult{JobID: ev.JobID,
					Error: fmt.Sprintf("line %d: reload control line carries job fields", lineNo)})
				obsIndex = append(obsIndex, -1)
				continue
			}
			// The window in progress is flushed first so the
			// acknowledgement lands in stream order; the engine itself
			// needs no quiescing — Swap is zero-downtime.
			if err := flush(); err != nil {
				return err
			}
			res := serveResult{Reloaded: ev.Reload}
			if next, err := loadModel(ev.Reload); err != nil {
				// The previous model keeps serving; the stream continues.
				res.Error = fmt.Sprintf("line %d: %v", lineNo, err)
			} else {
				engine.Swap(next)
				res.ModelKind = next.ModelKind()
			}
			results = append(results, res)
			obsIndex = append(obsIndex, -1)
			if err := flush(); err != nil {
				return err
			}
			continue
		}
		bin, err := eventBinary(&ev)
		var sample dataset.Sample
		var cached bool
		if err == nil {
			sample, cached, err = coll.Collect(ev.Exe, bin)
		}
		if err != nil {
			results = append(results, serveResult{JobID: ev.JobID,
				Error: fmt.Sprintf("line %d: %v", lineNo, err)})
			obsIndex = append(obsIndex, -1)
		} else {
			results = append(results, serveResult{JobID: ev.JobID})
			obsIndex = append(obsIndex, len(pending))
			cachedFlags = append(cachedFlags, cached)
			pending = append(pending, monitor.Event{
				JobID: ev.JobID, User: ev.User, Account: ev.Account,
				JobName: ev.JobName, Sample: sample,
			})
		}
		if len(pending) >= *chunk {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}

	if *stats {
		es, cs := engine.Stats(), coll.Stats()
		fmt.Fprintf(os.Stderr,
			"engine: %d hits, %d misses, %d coalesced, %d evicted, %d swaps, %d batches (%d samples, max %d), %d cached\n",
			es.Hits, es.Misses, es.Coalesced, es.Evicted, es.Swaps, es.Batches, es.BatchedSamples, es.MaxBatch, es.CacheEntries)
		fmt.Fprintf(os.Stderr, "collector: %d seen, %d unique, %d cache hits, %d evicted\n",
			cs.Seen, cs.Unique, cs.CacheHits, cs.Evicted)
	}
	return nil
}

// loadModel reads a trained classifier of any registered kind.
func loadModel(path string) (*core.Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(f)
}

// eventBinary resolves an event's executable content.
func eventBinary(ev *serveEvent) ([]byte, error) {
	switch {
	case ev.Path != "" && ev.BinaryB64 != "":
		return nil, errors.New("event has both path and binary_b64")
	case ev.Path != "":
		return os.ReadFile(ev.Path)
	case ev.BinaryB64 != "":
		return base64.StdEncoding.DecodeString(ev.BinaryB64)
	default:
		return nil, errors.New("event has neither path nor binary_b64")
	}
}
