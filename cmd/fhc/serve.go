package main

// The serve subcommand runs the paper's Figure 1 workflow as an
// always-on service: job events arrive as JSON lines, each naming an
// executable by path or carrying its content inline; the collector
// deduplicates extraction by exact hash, the serving engine micro-batches
// classification behind a prediction cache, and the monitor applies
// allocation policy. One prediction (plus findings) is emitted per event,
// as JSON lines, in input order.
//
// Event input, one JSON object per line:
//
//	{"job_id":"1","user":"alice","account":"bio-1","job_name":"run",
//	 "exe":"blastn","path":"/tmp/blastn"}
//	{"job_id":"2","user":"bob","exe":"a.out","binary_b64":"f0VMRg..."}
//
// A control line hot-swaps a retrained model with zero downtime — the
// stream keeps flowing, and no prediction cached under the old model is
// ever served again:
//
//	{"reload":"/models/fhc-2026-07.json"}
//
// Policy file (optional, -policy):
//
//	{"allowed_by_account":{"bio-1":["BLAST"]},"blocklist":["XMRig"]}
//
// With -http ADDR the same engine is additionally exposed over the
// network (internal/httpserve): classify, batch-classify, model-swap,
// health and Prometheus metrics endpoints, sharing the stream loop's
// extraction cache. `-input none -http :8080` serves HTTP only and runs
// until SIGINT/SIGTERM; with a finite -input the process drains the
// HTTP listener gracefully once the stream ends.
//
// With -retrain the service learns continuously (internal/retrain):
// confident predictions on either surface are harvested into a bounded
// class-balanced training store, a background cycle retrains on the
// configured trigger policy, and a candidate that meets-or-beats the
// incumbent's holdout macro-F1 is hot-swapped in with zero downtime and
// persisted under -retrain-artifacts. See OPERATIONS.md for the
// runbook.
//
// A model artifact that carries an open-set calibration changes the
// serving behaviour with zero extra configuration: every prediction on
// either surface gains a verdict (class, unknown or ambiguous), a
// population drift detector seeded from the calibration baseline
// watches the served verdict stream and exports fhc_drift_* metrics,
// and — with -retrain — a latched drift alarm kicks a retraining
// cycle. Uncalibrated artifacts serve exactly as before; the verdict
// field stays absent. See OPERATIONS.md, "Unknown verdicts and drift
// alarms".

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/httpserve"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/openset"
	"repro/internal/retrain"
	"repro/internal/serve"
)

func init() {
	extraCommands = append(extraCommands, command{
		"serve", "classify a stream of job events through the batching engine", cmdServe,
	})
}

// serveEvent is one JSON-lines job event. A line carrying Reload is a
// control event: the named model file is loaded and hot-swapped into
// the engine between stream windows.
type serveEvent struct {
	JobID     string `json:"job_id"`
	User      string `json:"user"`
	Account   string `json:"account"`
	JobName   string `json:"job_name"`
	Exe       string `json:"exe"`
	Path      string `json:"path,omitempty"`
	BinaryB64 string `json:"binary_b64,omitempty"`
	Reload    string `json:"reload,omitempty"`
}

// serveResult is one JSON-lines prediction (or reload acknowledgement,
// distinguished by its "reloaded" field).
type serveResult struct {
	JobID      string         `json:"job_id"`
	Label      string         `json:"label,omitempty"`
	Class      string         `json:"class,omitempty"`
	Confidence float64        `json:"confidence,omitempty"`
	Verdict    string         `json:"verdict,omitempty"`
	Cached     bool           `json:"cached,omitempty"`
	Findings   []serveFinding `json:"findings,omitempty"`
	Reloaded   string         `json:"reloaded,omitempty"`
	ModelKind  string         `json:"model_kind,omitempty"`
	Error      string         `json:"error,omitempty"`
}

type serveFinding struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// servePolicy is the on-disk policy format.
type servePolicy struct {
	AllowedByAccount map[string][]string `json:"allowed_by_account"`
	Blocklist        []string            `json:"blocklist"`
}

// serveHTTPBound, when non-nil, observes the bound HTTP address and a
// shutdown trigger equivalent to SIGINT. Tests use it to drive the
// blocking HTTP mode without signals.
var serveHTTPBound func(addr string, shutdown func())

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelPath := fs.String("model", "", "model file (required)")
	policyPath := fs.String("policy", "", "JSON policy file (optional)")
	input := fs.String("input", "-", "event stream: a JSON-lines file, - for stdin, or none (HTTP only)")
	httpAddr := fs.String("http", "", "also serve the HTTP API on this address (e.g. :8080)")
	httpPaths := fs.Bool("http-paths", false, "allow HTTP classify requests naming server-local paths")
	httpModels := fs.String("http-models", "", "confine HTTP model-swap artifact paths to this directory (empty allows any)")
	httpSpill := fs.Int("http-spill", 0, "spill-buffer bound for streamed ingestion on both surfaces; binaries beyond it skip ELF structural features (0 = default)")
	batch := fs.Int("batch", 0, "micro-batch window size (0 = engine default)")
	latency := fs.Duration("latency", 0, "micro-batch latency bound (0 = engine default)")
	workers := fs.Int("workers", 0, "concurrent batch executors (0 = engine default)")
	cacheSize := fs.Int("cache", 0, "prediction-cache entries (0 = default, negative disables)")
	chunk := fs.Int("chunk", 256, "events observed per window; bounds memory and goroutines")
	stats := fs.Bool("stats", false, "print engine and collector statistics to stderr at EOF")
	retrainOn := fs.Bool("retrain", false, "enable continuous learning: harvest labels, retrain in the background, auto-swap gated candidates")
	retrainEvery := fs.Int("retrain-every", 256, "retrain after this many newly harvested samples (negative disables the sample trigger)")
	retrainInterval := fs.Duration("retrain-interval", 0, "retrain on this wall-clock interval (0 disables)")
	retrainStore := fs.String("retrain-store", "", "training-store JSON-lines file, persisted across restarts (empty: memory only)")
	retrainCap := fs.Int("retrain-cap", 4096, "training-store sample cap; class-balanced eviction beyond it")
	retrainHoldout := fs.Float64("retrain-holdout", 0.2, "per-class fraction frozen as the promotion-gate holdout")
	retrainMargin := fs.Float64("retrain-margin", 0, "candidate macro-F1 may trail the incumbent by at most this and still promote")
	retrainConf := fs.Float64("retrain-confidence", 0.95, "minimum confidence for harvesting a self-labelled prediction")
	retrainArtifacts := fs.String("retrain-artifacts", "", "directory for promoted artifacts (model-TIMESTAMP.json + latest pointer)")
	retrainKeep := fs.Int("retrain-keep", 5, "promoted artifacts retained for rollback")
	retrainSeed := fs.Uint64("retrain-seed", 1, "training seed for retrained candidates")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return errors.New("-model is required")
	}
	if *chunk < 1 {
		return errors.New("-chunk must be at least 1")
	}
	if *input == "none" && *httpAddr == "" {
		return errors.New("-input none requires -http: nothing to serve")
	}

	clf, err := loadModel(*modelPath)
	if err != nil {
		return err
	}

	var policy monitor.Policy
	if *policyPath != "" {
		raw, err := os.ReadFile(*policyPath)
		if err != nil {
			return err
		}
		var sp servePolicy
		if err := json.Unmarshal(raw, &sp); err != nil {
			return fmt.Errorf("policy %s: %w", *policyPath, err)
		}
		policy = monitor.Policy{AllowedByAccount: sp.AllowedByAccount, Blocklist: sp.Blocklist}
	}

	in := os.Stdin
	if *input != "-" && *input != "none" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	engine := serve.New(clf, serve.Options{
		BatchSize:    *batch,
		MaxLatency:   *latency,
		Workers:      *workers,
		CacheEntries: *cacheSize,
	})
	defer engine.Close()
	mon := monitor.New(engine, policy)
	coll := collector.New(collector.Options{})

	// Continuous learning: the retrainer harvests off the monitor's
	// observation stream (both surfaces classify through this engine)
	// and shares the HTTP layer's metrics registry so /metrics exposes
	// the fhc_retrain_* series.
	var rt *retrain.Retrainer
	reg := metrics.NewRegistry()

	// A calibrated artifact carries its own serving-population baseline,
	// so drift detection needs no flags: seed a detector from the
	// calibration and let every served verdict — stream or HTTP — feed
	// it. Uncalibrated models predict no verdicts, so a detector would
	// only ever see VerdictNone; skip it.
	var det *openset.Detector
	if cal := clf.Calibration(); cal != nil {
		det = openset.NewDetector(cal.Baseline, openset.DriftOptions{Registry: reg})
	}

	if *retrainOn {
		rt, err = retrain.New(engine, clf, retrain.Options{
			Store:           retrain.StoreOptions{Cap: *retrainCap, Path: *retrainStore},
			MinNewSamples:   *retrainEvery,
			Interval:        *retrainInterval,
			HoldoutFraction: *retrainHoldout,
			Margin:          *retrainMargin,
			MinConfidence:   *retrainConf,
			ArtifactDir:     *retrainArtifacts,
			KeepArtifacts:   *retrainKeep,
			Train:           core.Config{Model: clf.ModelKind(), Seed: *retrainSeed},
			Registry:        reg,
			Drift:           det,
		})
		if err != nil {
			return err
		}
		defer func() {
			if err := rt.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "fhc serve: retrain close: %v\n", err)
			}
		}()
	}
	if rt != nil || det != nil {
		mon.SetObserver(func(e monitor.Event, pred core.Prediction, _ []monitor.Finding) {
			if det != nil {
				det.Observe(pred.Verdict, pred.Confidence)
			}
			if rt != nil {
				rt.ObservePrediction(&e.Sample, pred)
			}
		})
	}

	// The HTTP front end shares the stream loop's engine and extraction
	// cache: a binary seen on either surface is extracted once.
	var hs *httpserve.Server
	var httpErr chan error
	stop := make(chan struct{})
	var stopOnce sync.Once
	requestStop := func() { stopOnce.Do(func() { close(stop) }) }
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		hs = httpserve.New(engine, httpserve.Options{
			AllowPaths:    *httpPaths,
			ModelDir:      *httpModels,
			MaxSpillBytes: *httpSpill,
			Collector:     coll,
			Retrainer:     rt,
			Registry:      reg,
			Drift:         det,
		})
		httpErr = make(chan error, 1)
		go func() { httpErr <- hs.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "fhc serve: HTTP API on http://%s\n", ln.Addr())
		if serveHTTPBound != nil {
			serveHTTPBound(ln.Addr().String(), requestStop)
		}
	} else if det != nil && rt != nil {
		// Stream-only deployments still route drift alarms into a
		// retraining cycle; with HTTP enabled, httpserve.New wires this
		// same hook.
		det.AddAlarmHook(func(string) { rt.KickDrift() })
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)

	// One window of decoded events, flushed through ObserveAll so the
	// engine sees the whole burst at once. Events that failed collection
	// keep a result slot (obsIndex -1) so output order matches input
	// order.
	var pending []monitor.Event
	var results []serveResult
	var obsIndex []int
	var cachedFlags []bool
	flush := func() error {
		var obs []monitor.Observation
		if len(pending) > 0 {
			obs = mon.ObserveAll(pending)
		}
		for i := range results {
			if j := obsIndex[i]; j >= 0 {
				o := obs[j]
				results[i].Label = o.Prediction.Label
				results[i].Class = o.Prediction.Class
				results[i].Confidence = o.Prediction.Confidence
				results[i].Verdict = string(o.Prediction.Verdict)
				results[i].Cached = cachedFlags[j]
				for _, f := range o.Findings {
					results[i].Findings = append(results[i].Findings, serveFinding{
						Kind: f.Kind.String(), Message: f.Message,
					})
				}
			}
			if err := enc.Encode(&results[i]); err != nil {
				return err
			}
		}
		pending, results = pending[:0], results[:0]
		obsIndex, cachedFlags = obsIndex[:0], cachedFlags[:0]
		return out.Flush()
	}

	runStream := func() error {
		scanner := bufio.NewScanner(in)
		scanner.Buffer(make([]byte, 0, 1<<20), 64<<20) // inline binaries are large
		lineNo := 0
		for scanner.Scan() {
			lineNo++
			line := scanner.Bytes()
			if len(line) == 0 {
				continue
			}
			var ev serveEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				results = append(results, serveResult{JobID: ev.JobID,
					Error: fmt.Sprintf("line %d: %v", lineNo, err)})
				obsIndex = append(obsIndex, -1)
				continue
			}
			// A line that decodes to an entirely empty event is an unknown
			// control object — a mistyped verb like {"relaod":...} or an
			// unsupported one like {"shutdown":true}. Re-decode strictly to
			// name the offending field instead of letting the line surface
			// as a baffling "neither path nor binary_b64" featurisation
			// error. Job events keep the lenient decode, so producers may
			// add extra fields (timestamps, priorities) freely.
			if ev == (serveEvent{}) {
				dec := json.NewDecoder(bytes.NewReader(line))
				dec.DisallowUnknownFields()
				err := dec.Decode(&serveEvent{})
				if err == nil {
					err = errors.New("event is empty")
				}
				results = append(results, serveResult{
					Error: fmt.Sprintf("line %d: unknown control object: %v", lineNo, err)})
				obsIndex = append(obsIndex, -1)
				continue
			}
			if ev.Reload != "" {
				// Control line: hot-swap the model. A line mixing control and
				// job fields is a producer bug — rejecting it beats silently
				// dropping the job's prediction.
				if ev.JobID != "" || ev.Path != "" || ev.BinaryB64 != "" || ev.Exe != "" ||
					ev.User != "" || ev.Account != "" || ev.JobName != "" {
					results = append(results, serveResult{JobID: ev.JobID,
						Error: fmt.Sprintf("line %d: reload control line carries job fields", lineNo)})
					obsIndex = append(obsIndex, -1)
					continue
				}
				// The window in progress is flushed first so the
				// acknowledgement lands in stream order; the engine itself
				// needs no quiescing — Swap is zero-downtime.
				if err := flush(); err != nil {
					return err
				}
				res := serveResult{Reloaded: ev.Reload}
				if next, err := loadModel(ev.Reload); err != nil {
					// The previous model keeps serving; the stream continues.
					res.Error = fmt.Sprintf("line %d: %v", lineNo, err)
				} else {
					if rt != nil {
						// Swap, gate-baseline reset and drift re-baseline,
						// atomically.
						rt.InstallIncumbent(next)
					} else {
						engine.Swap(next)
						// The drift window compares against the incumbent's
						// calibration population; a reload that changes the
						// model must move the baseline with it.
						if det != nil {
							if cal := next.Calibration(); cal != nil {
								det.SetBaseline(cal.Baseline)
							}
						}
					}
					res.ModelKind = next.ModelKind()
				}
				results = append(results, res)
				obsIndex = append(obsIndex, -1)
				if err := flush(); err != nil {
					return err
				}
				continue
			}
			sample, cached, err := collectEvent(coll, &ev, *httpSpill)
			if err != nil {
				results = append(results, serveResult{JobID: ev.JobID,
					Error: fmt.Sprintf("line %d: %v", lineNo, err)})
				obsIndex = append(obsIndex, -1)
			} else {
				results = append(results, serveResult{JobID: ev.JobID})
				obsIndex = append(obsIndex, len(pending))
				cachedFlags = append(cachedFlags, cached)
				pending = append(pending, monitor.Event{
					JobID: ev.JobID, User: ev.User, Account: ev.Account,
					JobName: ev.JobName, Sample: sample,
				})
			}
			if len(pending) >= *chunk {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		if err := scanner.Err(); err != nil {
			return err
		}
		return flush()
	}

	if *input != "none" {
		if err := runStream(); err != nil {
			return err
		}
	} else {
		// HTTP-only mode: block until a shutdown signal (or the test
		// hook's trigger, or a listener failure).
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		select {
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "fhc serve: %v — draining\n", s)
		case <-stop:
		case err := <-httpErr:
			signal.Stop(sig)
			return err // listener died before any shutdown request
		}
		signal.Stop(sig)
	}

	// Graceful HTTP drain: stop advertising readiness, finish in-flight
	// requests (their engine windows included), then release the port.
	if hs != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-httpErr; err != nil && err != http.ErrServerClosed {
			return err
		}
	}

	if *stats {
		es, cs := engine.Stats(), coll.Stats()
		fmt.Fprintf(os.Stderr,
			"engine: %d hits, %d misses, %d coalesced, %d evicted, %d swaps, %d batches (%d samples, max %d), %d cached\n",
			es.Hits, es.Misses, es.Coalesced, es.Evicted, es.Swaps, es.Batches, es.BatchedSamples, es.MaxBatch, es.CacheEntries)
		fmt.Fprintf(os.Stderr, "collector: %d seen, %d unique, %d cache hits, %d evicted\n",
			cs.Seen, cs.Unique, cs.CacheHits, cs.Evicted)
		if rt != nil {
			rs := rt.Stats()
			fmt.Fprintf(os.Stderr,
				"retrain: %d runs (%d promoted, %d rejected, %d failed), %d harvested, store %d samples over %d classes\n",
				rs.Runs, rs.Promotions, rs.Rejections, rs.Failures, rs.Harvested, rs.StoreSize, len(rs.StorePerClass))
		}
		if det != nil {
			ds := det.State()
			fmt.Fprintf(os.Stderr,
				"drift: %d observations, %d alarms (latched: %v), window %d, unknown rate %.3f vs baseline %.3f\n",
				ds.Observations, ds.Alarms, ds.Alarmed, ds.WindowSize, ds.WindowUnknownRate, ds.BaselineUnknownRate)
		}
	}
	return nil
}

// loadModel reads a trained classifier of any registered kind.
func loadModel(path string) (*core.Classifier, error) {
	return core.LoadFile(path)
}

// collectEvent streams an event's executable content into the shared
// collector: path events stream straight off the filesystem and inline
// base64 decodes through a streaming reader, so the stream loop gets
// the same single-pass, O(1)-memory ingestion as the HTTP surface —
// the binary is never materialised in full.
func collectEvent(coll *collector.Collector, ev *serveEvent, maxSpill int) (dataset.Sample, bool, error) {
	switch {
	case ev.Path != "" && ev.BinaryB64 != "":
		return dataset.Sample{}, false, errors.New("event has both path and binary_b64")
	case ev.Path != "":
		f, err := os.Open(ev.Path)
		if err != nil {
			return dataset.Sample{}, false, err
		}
		defer f.Close()
		return coll.CollectStream(ev.Exe, f, maxSpill)
	case ev.BinaryB64 != "":
		dec := base64.NewDecoder(base64.StdEncoding, strings.NewReader(ev.BinaryB64))
		return coll.CollectStream(ev.Exe, dec, maxSpill)
	default:
		return dataset.Sample{}, false, errors.New("event has neither path nor binary_b64")
	}
}
