package main

// Inspection subcommands: hash, compare, strings, nm, ldd — the fuzzy
// hashing and feature-extraction primitives, usable on any ELF binary.

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/extract"
	"repro/ssdeep"
)

// cmdHash prints all fuzzy digests of each file.
func cmdHash(args []string) error {
	fs := flag.NewFlagSet("hash", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return errors.New("no files given")
	}
	for _, path := range fs.Args() {
		bin, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		s, err := dataset.FromBinary("", "", path, bin)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", path)
		for kind := dataset.FeatureKind(0); kind < dataset.NumFeatureKinds; kind++ {
			d := s.Digests[kind]
			if d.IsZero() {
				fmt.Printf("  %-16s (unavailable)\n", kind)
				continue
			}
			fmt.Printf("  %-16s %s\n", kind, d)
		}
		fmt.Printf("  %-16s %x\n", "sha256", s.SHA256)
	}
	return nil
}

// cmdCompare prints the per-feature similarity of two executables.
func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	distName := fs.String("distance", "damerau-levenshtein",
		"scoring distance: damerau-levenshtein, levenshtein, spamsum, or a -dp oracle (damerau-levenshtein-dp, levenshtein-dp)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return errors.New("need exactly two files")
	}
	dist, err := pickDistance(*distName)
	if err != nil {
		return err
	}
	load := func(path string) (dataset.Sample, error) {
		bin, err := os.ReadFile(path)
		if err != nil {
			return dataset.Sample{}, err
		}
		return dataset.FromBinary("", "", path, bin)
	}
	a, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %s vs %s\n", "feature", fs.Arg(0), fs.Arg(1))
	for kind := dataset.FeatureKind(0); kind < dataset.NumFeatureKinds; kind++ {
		da, db := a.Digests[kind], b.Digests[kind]
		if da.IsZero() || db.IsZero() {
			fmt.Printf("%-16s (unavailable)\n", kind)
			continue
		}
		fmt.Printf("%-16s %d\n", kind, ssdeep.CompareDistance(da, db, dist))
	}
	if a.SHA256 == b.SHA256 {
		fmt.Printf("%-16s identical\n", "sha256")
	} else {
		fmt.Printf("%-16s different\n", "sha256")
	}
	return nil
}

func pickDistance(name string) (ssdeep.DistanceFunc, error) {
	if name == "dl" {
		name = string(core.DistanceDL)
	}
	return core.DistanceName(name).Func()
}

// cmdStrings prints the printable-run view.
func cmdStrings(args []string) error {
	return printView(args, "strings", func(bin []byte) ([]byte, error) {
		return extract.StringsText(bin, 0), nil
	})
}

// cmdNM prints the global-symbol view.
func cmdNM(args []string) error {
	return printView(args, "nm", extract.SymbolsText)
}

// cmdLDD prints the needed-library view.
func cmdLDD(args []string) error {
	return printView(args, "ldd", extract.NeededText)
}

func printView(args []string, name string, view func([]byte) ([]byte, error)) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("need exactly one file")
	}
	bin, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	text, err := view(bin)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(text)
	return err
}
