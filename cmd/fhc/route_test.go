package main

import (
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseWorkerSpecs(t *testing.T) {
	specs, err := parseWorkerSpecs([]string{"alpha=http://h1:8080", "http://h2:8080"})
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Name != "alpha" || specs[0].URL != "http://h1:8080" {
		t.Fatalf("named spec parsed as %+v", specs[0])
	}
	// A bare URL gets a positional name; the "=" inside a URL query must
	// not be mistaken for a NAME= separator because "/" precedes it.
	if specs[1].Name != "w1" || specs[1].URL != "http://h2:8080" {
		t.Fatalf("bare spec parsed as %+v", specs[1])
	}
	if _, err := parseWorkerSpecs(nil); err == nil {
		t.Fatal("empty worker list accepted")
	}
	if _, err := parseWorkerSpecs([]string{"=http://h:1"}); err == nil {
		t.Fatal("empty name accepted")
	}
}

// TestCmdRoute drives the router CLI end to end: two real `serve -http`
// workers, fronted by `route`, answering classify requests with shard
// attribution and exposing the cluster status and metrics surfaces.
func TestCmdRoute(t *testing.T) {
	dir, binary := makeTree(t)
	model := filepath.Join(t.TempDir(), "model.json")
	if _, err := withStdout(t, func() error {
		return cmdTrain([]string{"-corpus", dir, "-model", model, "-threshold", "0.3", "-trees", "40"})
	}); err != nil {
		t.Fatalf("train: %v", err)
	}

	// Two workers, started one at a time through the shared bound hook.
	type boundServer struct {
		addr string
		stop func()
	}
	bound := make(chan boundServer, 1)
	serveHTTPBound = func(addr string, stop func()) {
		bound <- boundServer{addr, stop}
	}
	defer func() { serveHTTPBound = nil }()

	var workerAddrs []string
	var stops []func()
	workerDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			workerDone <- cmdServe([]string{"-model", model, "-input", "none", "-http", "127.0.0.1:0"})
		}()
		select {
		case b := <-bound:
			workerAddrs = append(workerAddrs, b.addr)
			stops = append(stops, b.stop)
		case err := <-workerDone:
			t.Fatalf("worker %d exited before binding: %v", i, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %d never bound", i)
		}
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
		for i := 0; i < 2; i++ {
			select {
			case <-workerDone:
			case <-time.After(20 * time.Second):
				t.Error("a worker did not exit after shutdown")
			}
		}
	}()

	routerBound := make(chan boundServer, 1)
	routeBound = func(addr string, stop func()) {
		routerBound <- boundServer{addr, stop}
	}
	defer func() { routeBound = nil }()

	routeDone := make(chan error, 1)
	go func() {
		routeDone <- cmdRoute([]string{
			"-worker", "w0=http://" + workerAddrs[0],
			"-worker", "w1=http://" + workerAddrs[1],
			"-listen", "127.0.0.1:0",
			"-incumbent", model,
		})
	}()
	var base string
	var routeStop func()
	select {
	case b := <-routerBound:
		base, routeStop = "http://"+b.addr, b.stop
	case err := <-routeDone:
		t.Fatalf("route exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("router never bound")
	}

	// Classify through the router: inline base64 so any shard can answer.
	bin, err := os.ReadFile(binary)
	if err != nil {
		t.Fatal(err)
	}
	body := `{"exe":"job","binary_b64":"` + base64.StdEncoding.EncodeToString(bin) + `"}`
	cresp, err := http.Post(base+"/v1/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"label":"AppOne"`) {
		t.Fatalf("classify through router: %d %s", cresp.StatusCode, raw)
	}
	if shard := cresp.Header.Get("Fhc-Shard"); shard != "w0" && shard != "w1" {
		t.Fatalf("router did not attribute the shard: %q", shard)
	}

	// Cluster status names both workers; metrics carry the cluster series.
	sresp, err := http.Get(base + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	sraw, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	var status struct {
		Workers []struct {
			Name  string `json:"name"`
			Ready bool   `json:"ready"`
		} `json:"workers"`
	}
	if err := json.Unmarshal(sraw, &status); err != nil {
		t.Fatalf("cluster status: %v\n%s", err, sraw)
	}
	if len(status.Workers) != 2 {
		t.Fatalf("cluster status workers: %s", sraw)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mraw), "fhc_cluster_requests_total") {
		t.Fatalf("router metrics missing cluster series:\n%.400s", mraw)
	}

	// Shut the router down and demand a clean exit.
	routeStop()
	select {
	case err := <-routeDone:
		if err != nil {
			t.Fatalf("route did not shut down cleanly: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("route did not exit after shutdown")
	}
}

// TestCmdRouteValidation pins the flag refusals.
func TestCmdRouteValidation(t *testing.T) {
	if err := cmdRoute([]string{"-listen", "127.0.0.1:0"}); err == nil {
		t.Fatal("route without workers accepted")
	}
	if err := cmdRoute([]string{
		"-worker", "http://127.0.0.1:1",
		"-watch", t.TempDir(),
		"-listen", "127.0.0.1:0",
	}); err == nil || !strings.Contains(err.Error(), "-incumbent") {
		t.Fatalf("route -watch without -incumbent: %v", err)
	}
}
