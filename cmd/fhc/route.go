package main

// The route subcommand runs the distributed serving tier's front door
// (internal/cluster): a stateless router that consistent-hashes every
// classify request onto the worker shard owning its binary's cache
// key, health-checks the fleet, hedges slow shards, and drives staged
// model rollouts (canary → gate → expand → promote, rollback on any
// failure) across all workers' /v1/model/swap endpoints.
//
// Each -worker names one `fhc serve -http` process. With -watch the
// router auto-promotes artifacts the retrainer publishes behind the
// directory's "latest" pointer, running each as a staged rollout.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func init() {
	extraCommands = append(extraCommands, command{
		"route", "front a worker fleet with the consistent-hash router", cmdRoute,
	})
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// routeBound, when non-nil, observes the bound address and a shutdown
// trigger equivalent to SIGINT. Tests use it to drive the blocking
// router without signals. Mirrors serveHTTPBound.
var routeBound func(addr string, shutdown func())

// parseWorkerSpecs turns -worker values into cluster specs. Each value
// is NAME=URL, or a bare URL that gets a positional wN name.
func parseWorkerSpecs(raw []string) ([]cluster.WorkerSpec, error) {
	if len(raw) == 0 {
		return nil, errors.New("at least one -worker is required")
	}
	specs := make([]cluster.WorkerSpec, 0, len(raw))
	for i, v := range raw {
		name, url := "w"+strconv.Itoa(i), v
		if eq := strings.IndexByte(v, '='); eq >= 0 && !strings.Contains(v[:eq], "/") {
			name, url = v[:eq], v[eq+1:]
		}
		if name == "" || url == "" {
			return nil, fmt.Errorf("-worker %q: want NAME=URL or URL", v)
		}
		specs = append(specs, cluster.WorkerSpec{Name: name, URL: url})
	}
	return specs, nil
}

func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	var workers multiFlag
	fs.Var(&workers, "worker", "worker shard as NAME=URL or URL (repeatable, required)")
	listen := fs.String("listen", ":8090", "address the router serves on")
	replicas := fs.Int("replicas", 0, "virtual nodes per worker on the hash ring (0 = default)")
	hedgeAfter := fs.Duration("hedge-after", 0, "race a hedged duplicate after this reply delay (0 = default, negative disables)")
	maxAttempts := fs.Int("max-attempts", 0, "shards tried per request, hedges included (0 = default)")
	maxBody := fs.Int64("max-body", 0, "request-body byte bound at the router (0 = default)")
	reqTimeout := fs.Duration("request-timeout", 0, "end-to-end forwarding budget per request (0 = default)")
	healthEvery := fs.Duration("health-interval", 0, "readyz probe cadence per worker (0 = default)")
	healthTimeout := fs.Duration("health-timeout", 0, "readyz probe timeout; set well above the fleet's loaded readyz p99 (0 = default)")
	swapTimeout := fs.Duration("swap-timeout", 0, "per-worker budget for rollout swap and gate calls (0 = default)")
	incumbent := fs.String("incumbent", "", "artifact the fleet currently serves; the rollback target (required for rollouts)")
	watch := fs.String("watch", "", "auto-promote artifacts from this retrain artifact directory")
	watchEvery := fs.Duration("watch-every", 0, "artifact-pointer poll cadence (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := parseWorkerSpecs(workers)
	if err != nil {
		return err
	}
	if *watch != "" && *incumbent == "" {
		return errors.New("-watch requires -incumbent: a rollout needs a rollback target")
	}

	rt, err := cluster.New(specs, cluster.Options{
		Replicas:          *replicas,
		HedgeAfter:        *hedgeAfter,
		MaxAttempts:       *maxAttempts,
		MaxBodyBytes:      *maxBody,
		RequestTimeout:    *reqTimeout,
		HealthInterval:    *healthEvery,
		HealthTimeout:     *healthTimeout,
		SwapTimeout:       *swapTimeout,
		IncumbentArtifact: *incumbent,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	if *watch != "" {
		if err := rt.Coordinator().WatchArtifacts(*watch, *watchEvery); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: rt.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "fhc route: fronting %d workers on http://%s\n", len(specs), ln.Addr())

	stop := make(chan struct{})
	var stopOnce sync.Once
	requestStop := func() { stopOnce.Do(func() { close(stop) }) }
	if routeBound != nil {
		routeBound(ln.Addr().String(), requestStop)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "fhc route: %v — draining\n", s)
	case <-stop:
	case err := <-httpErr:
		signal.Stop(sig)
		return err // listener died before any shutdown request
	}
	signal.Stop(sig)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-httpErr; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
