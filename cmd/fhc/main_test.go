package main

// CLI tests drive the subcommand functions directly against temporary
// corpora, covering the full workflow the README documents.

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/synth"
)

// withStdout captures os.Stdout during fn.
func withStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// makeTree writes a small labelled corpus and returns its directory and
// one binary path.
func makeTree(t *testing.T) (dir, binary string) {
	t.Helper()
	dir = t.TempDir()
	corpus, err := synth.Generate([]synth.ClassSpec{
		{Name: "AppOne", Samples: 6},
		{Name: "AppTwo", Samples: 6},
		{Name: "AppThree", Samples: 6},
	}, synth.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.WriteTree(dir); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, corpus.Samples[0].Path())
}

func TestCmdCorpusAndScan(t *testing.T) {
	dir := t.TempDir()
	out, err := withStdout(t, func() error {
		return cmdCorpus([]string{"-out", dir, "-scale", "small", "-seed", "3"})
	})
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	if !strings.Contains(out, "wrote") {
		t.Fatalf("corpus output: %q", out)
	}
	scanOut, err := withStdout(t, func() error {
		return cmdScan([]string{dir})
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(strings.Split(strings.TrimSpace(scanOut), "\n")) < 10 {
		t.Fatalf("scan produced too few lines:\n%s", scanOut)
	}
}

func TestCmdCorpusValidation(t *testing.T) {
	if err := cmdCorpus([]string{"-scale", "small"}); err == nil {
		t.Error("corpus without -out accepted")
	}
	if err := cmdCorpus([]string{"-out", t.TempDir(), "-scale", "gigantic"}); err == nil {
		t.Error("corpus with bogus scale accepted")
	}
}

func TestCmdTrainClassifyReport(t *testing.T) {
	dir, binary := makeTree(t)
	model := filepath.Join(t.TempDir(), "model.json")

	out, err := withStdout(t, func() error {
		return cmdTrain([]string{"-corpus", dir, "-model", model, "-threshold", "0.3", "-trees", "40"})
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if !strings.Contains(out, "trained rf on") {
		t.Fatalf("train output: %q", out)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model file missing: %v", err)
	}

	out, err = withStdout(t, func() error {
		return cmdClassify([]string{"-model", model, binary})
	})
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	if !strings.Contains(out, "AppOne") {
		t.Fatalf("classify output: %q", out)
	}

	out, err = withStdout(t, func() error {
		return cmdReport([]string{"-corpus", dir, "-model", model})
	})
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	for _, want := range []string{"micro avg", "AppTwo"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdTrainValidation(t *testing.T) {
	if err := cmdTrain([]string{"-model", "x"}); err == nil {
		t.Error("train without corpus accepted")
	}
	if err := cmdTrain([]string{"-corpus", t.TempDir(), "-model", filepath.Join(t.TempDir(), "m")}); err == nil {
		t.Error("train on empty corpus accepted")
	}
	if err := cmdTrain([]string{"-corpus", "a", "-samples", "b", "-model", "m"}); err == nil {
		t.Error("train with both -corpus and -samples accepted")
	}
	dir, _ := makeTree(t)
	if err := cmdTrain([]string{"-corpus", dir, "-model", filepath.Join(t.TempDir(), "m"),
		"-kind", "perceptron", "-threshold", "0.3"}); err == nil {
		t.Error("train with unregistered model kind accepted")
	}
	if err := cmdTrain([]string{"-corpus", dir, "-model", filepath.Join(t.TempDir(), "m"),
		"-threshold", "0.3", "-calibrate", "0.7"}); err == nil {
		t.Error("train with -calibrate >= 0.5 accepted")
	}
}

// TestCmdTrainCalibrate drives the production path for calibrated
// artifacts: train with -calibrate, confirm the calibration is
// persisted inside the model file, and confirm a model reloaded from
// that artifact serves verdicts.
func TestCmdTrainCalibrate(t *testing.T) {
	dir, binary := makeTree(t)
	model := filepath.Join(t.TempDir(), "model-cal.json")
	out, err := withStdout(t, func() error {
		return cmdTrain([]string{"-corpus", dir, "-model", model,
			"-threshold", "0.3", "-trees", "40", "-calibrate", "0.25"})
	})
	if err != nil {
		t.Fatalf("train -calibrate: %v", err)
	}
	if !strings.Contains(out, "calibrated for open-set abstention") {
		t.Fatalf("train output: %q", out)
	}
	clf, err := core.LoadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	cal := clf.Calibration()
	if cal == nil {
		t.Fatal("artifact carries no calibration")
	}
	raw, err := os.ReadFile(binary)
	if err != nil {
		t.Fatal(err)
	}
	sample, err := dataset.FromBinary("", "", "app", raw)
	if err != nil {
		t.Fatal(err)
	}
	if p := clf.Classify(&sample); p.Verdict == "" {
		t.Fatalf("reloaded calibrated model predicts no verdict: %+v", p)
	}
}

// TestCmdTrainAlternateKind drives the CLI model selection end to end:
// train a knn model, classify with it, and confirm the artifact is
// tagged with its kind.
func TestCmdTrainAlternateKind(t *testing.T) {
	dir, binary := makeTree(t)
	model := filepath.Join(t.TempDir(), "model-knn.json")
	out, err := withStdout(t, func() error {
		return cmdTrain([]string{"-corpus", dir, "-model", model, "-kind", "knn", "-threshold", "0.3"})
	})
	if err != nil {
		t.Fatalf("train -kind knn: %v", err)
	}
	if !strings.Contains(out, "trained knn on") {
		t.Fatalf("train output: %q", out)
	}
	raw, err := os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"model_kind":"knn"`) {
		t.Fatal("artifact not tagged with its model kind")
	}
	out, err = withStdout(t, func() error {
		return cmdClassify([]string{"-model", model, binary})
	})
	if err != nil {
		t.Fatalf("classify with knn model: %v", err)
	}
	if !strings.Contains(out, "AppOne") {
		t.Fatalf("knn classify output: %q", out)
	}
}

func TestCmdScanJSONAndTrainFromSamples(t *testing.T) {
	dir, _ := makeTree(t)
	jsonPath := filepath.Join(t.TempDir(), "samples.jsonl")
	if _, err := withStdout(t, func() error {
		return cmdScan([]string{"-json", jsonPath, dir})
	}); err != nil {
		t.Fatalf("scan -json: %v", err)
	}
	if st, err := os.Stat(jsonPath); err != nil || st.Size() == 0 {
		t.Fatalf("feature file missing/empty: %v", err)
	}
	model := filepath.Join(t.TempDir(), "model.json")
	out, err := withStdout(t, func() error {
		return cmdTrain([]string{"-samples", jsonPath, "-model", model, "-threshold", "0.3", "-trees", "30"})
	})
	if err != nil {
		t.Fatalf("train -samples: %v", err)
	}
	if !strings.Contains(out, "trained rf on") {
		t.Fatalf("train output: %q", out)
	}
	// The cached-features model must classify like the tree-trained one.
	rep, err := withStdout(t, func() error {
		return cmdReport([]string{"-corpus", dir, "-model", model, "-format", "csv"})
	})
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if !strings.Contains(rep, `"micro avg"`) {
		t.Fatalf("csv report:\n%s", rep)
	}
}

func TestCmdClassifyValidation(t *testing.T) {
	if err := cmdClassify([]string{"-model", "/nonexistent/model"}); err == nil {
		t.Error("classify without binaries accepted")
	}
	if err := cmdClassify([]string{"-model", "/nonexistent/model", "some-binary"}); err == nil {
		t.Error("classify with missing model accepted")
	}
}

func TestCmdHashCompare(t *testing.T) {
	dir, binary := makeTree(t)
	out, err := withStdout(t, func() error { return cmdHash([]string{binary}) })
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	for _, want := range []string{"ssdeep-file", "ssdeep-symbols", "sha256"} {
		if !strings.Contains(out, want) {
			t.Fatalf("hash output missing %q:\n%s", want, out)
		}
	}
	// Compare the binary with a sibling.
	var other string
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && path != binary && other == "" {
			other = path
		}
		return err
	})
	if err != nil || other == "" {
		t.Fatalf("no sibling binary found: %v", err)
	}
	out, err = withStdout(t, func() error { return cmdCompare([]string{binary, other}) })
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if !strings.Contains(out, "ssdeep-symbols") {
		t.Fatalf("compare output:\n%s", out)
	}
	if err := cmdCompare([]string{binary}); err == nil {
		t.Error("compare with one file accepted")
	}
	if err := cmdCompare([]string{"-distance", "bogus", binary, other}); err == nil {
		t.Error("compare with bogus distance accepted")
	}
}

func TestCmdViews(t *testing.T) {
	_, binary := makeTree(t)
	out, err := withStdout(t, func() error { return cmdNM([]string{binary}) })
	if err != nil {
		t.Fatalf("nm: %v", err)
	}
	if !strings.Contains(out, "T ") {
		t.Fatalf("nm output has no text symbols:\n%.300s", out)
	}
	out, err = withStdout(t, func() error { return cmdStrings([]string{binary}) })
	if err != nil {
		t.Fatalf("strings: %v", err)
	}
	if len(out) < 100 {
		t.Fatalf("strings output too short: %d bytes", len(out))
	}
	out, err = withStdout(t, func() error { return cmdLDD([]string{binary}) })
	if err != nil {
		t.Fatalf("ldd: %v", err)
	}
	if !strings.Contains(out, ".so") {
		t.Fatalf("ldd output: %q", out)
	}
}

func TestCmdDups(t *testing.T) {
	// Two classes sharing one genome: guaranteed cross-class duplicates.
	dir := t.TempDir()
	corpus, err := synth.Generate([]synth.ClassSpec{
		{Name: "ToolA", Genome: "shared", Samples: 4},
		{Name: "ToolB", Genome: "shared", Samples: 4, VersionOffset: 1},
		{Name: "Other", Samples: 4},
	}, synth.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.WriteTree(dir); err != nil {
		t.Fatal(err)
	}
	out, err := withStdout(t, func() error {
		return cmdDups([]string{"-min", "50", dir})
	})
	if err != nil {
		t.Fatalf("dups: %v", err)
	}
	if !strings.Contains(out, "CROSS-CLASS") {
		t.Fatalf("dups did not find the shared-genome pair:\n%s", out)
	}
	if strings.Contains(out, "Other") {
		t.Fatalf("dups flagged the unrelated class:\n%s", out)
	}
	if err := cmdDups([]string{"-feature", "bogus", dir}); err == nil {
		t.Error("dups with bogus feature accepted")
	}
}

func TestCmdServe(t *testing.T) {
	dir, binary := makeTree(t)
	model := filepath.Join(t.TempDir(), "model.json")
	if _, err := withStdout(t, func() error {
		return cmdTrain([]string{"-corpus", dir, "-model", model, "-threshold", "0.3", "-trees", "40"})
	}); err != nil {
		t.Fatalf("train: %v", err)
	}

	policy := filepath.Join(t.TempDir(), "policy.json")
	if err := os.WriteFile(policy, []byte(`{"allowed_by_account":{"bio-1":["AppOne"]},"blocklist":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	events := filepath.Join(t.TempDir(), "events.jsonl")
	lines := []string{
		`{"job_id":"1","user":"alice","account":"bio-1","exe":"a","path":"` + binary + `"}`,
		`{not json`, // malformed line: error slot, stream continues
		// The same binary again: must be served from the caches.
		`{"job_id":"2","user":"alice","account":"bio-1","exe":"b","path":"` + binary + `"}`,
		`{"job_id":"3","user":"bob","exe":"c"}`, // no content: error slot
	}
	if err := os.WriteFile(events, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := withStdout(t, func() error {
		return cmdServe([]string{"-model", model, "-policy", policy, "-input", events, "-chunk", "2"})
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	got := strings.Split(strings.TrimSpace(out), "\n")
	if len(got) != len(lines) {
		t.Fatalf("serve emitted %d results for %d events:\n%s", len(got), len(lines), out)
	}
	if !strings.Contains(got[0], `"label":"AppOne"`) || !strings.Contains(got[0], `"job_id":"1"`) {
		t.Fatalf("first result: %s", got[0])
	}
	if !strings.Contains(got[1], `"error"`) || strings.Contains(got[1], `"label"`) {
		t.Fatalf("malformed line not reported as an error slot: %s", got[1])
	}
	if !strings.Contains(got[2], `"cached":true`) || !strings.Contains(got[2], `"job_id":"2"`) {
		t.Fatalf("duplicate submission not cached: %s", got[2])
	}
	if !strings.Contains(got[3], `"error"`) || !strings.Contains(got[3], `"job_id":"3"`) {
		t.Fatalf("content-less event not reported in order: %s", got[3])
	}

	if err := cmdServe([]string{"-input", events}); err == nil {
		t.Error("serve without -model accepted")
	}
}

// TestCmdServeReload drives the zero-downtime reload control line: the
// stream swaps from an rf model to a knn model mid-flight, a bad reload
// is acknowledged as an error without stopping the stream, and events
// after each control line keep classifying.
func TestCmdServeReload(t *testing.T) {
	dir, binary := makeTree(t)
	modelA := filepath.Join(t.TempDir(), "model-rf.json")
	modelB := filepath.Join(t.TempDir(), "model-knn.json")
	if _, err := withStdout(t, func() error {
		return cmdTrain([]string{"-corpus", dir, "-model", modelA, "-threshold", "0.3", "-trees", "40"})
	}); err != nil {
		t.Fatalf("train rf: %v", err)
	}
	if _, err := withStdout(t, func() error {
		return cmdTrain([]string{"-corpus", dir, "-model", modelB, "-kind", "knn", "-threshold", "0.3"})
	}); err != nil {
		t.Fatalf("train knn: %v", err)
	}

	events := filepath.Join(t.TempDir(), "events.jsonl")
	lines := []string{
		`{"job_id":"1","user":"alice","exe":"a","path":"` + binary + `"}`,
		`{"reload":"` + modelB + `"}`,
		// The same binary after the swap: extraction stays deduplicated
		// (model-independent), but the prediction comes from the swapped
		// engine (the engine-level epoch tests prove no stale serving).
		`{"job_id":"2","user":"alice","exe":"a","path":"` + binary + `"}`,
		`{"reload":"/nonexistent/model.json"}`,
		`{"job_id":"3","user":"alice","exe":"a","path":"` + binary + `"}`,
		// A line mixing control and job fields is a producer bug: it must
		// be rejected, not half-processed.
		`{"job_id":"4","exe":"a","path":"` + binary + `","reload":"` + modelB + `"}`,
	}
	if err := os.WriteFile(events, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := withStdout(t, func() error {
		return cmdServe([]string{"-model", modelA, "-input", events})
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	got := strings.Split(strings.TrimSpace(out), "\n")
	if len(got) != len(lines) {
		t.Fatalf("serve emitted %d results for %d lines:\n%s", len(got), len(lines), out)
	}
	if !strings.Contains(got[0], `"label":"AppOne"`) {
		t.Fatalf("pre-reload result: %s", got[0])
	}
	if !strings.Contains(got[1], `"reloaded"`) || !strings.Contains(got[1], `"model_kind":"knn"`) {
		t.Fatalf("reload not acknowledged with the new kind: %s", got[1])
	}
	if !strings.Contains(got[2], `"label":"AppOne"`) {
		t.Fatalf("post-reload event mislabelled: %s", got[2])
	}
	if !strings.Contains(got[3], `"error"`) || !strings.Contains(got[3], `"reloaded"`) {
		t.Fatalf("failed reload not reported: %s", got[3])
	}
	if !strings.Contains(got[4], `"label":"AppOne"`) {
		t.Fatalf("stream did not survive the failed reload: %s", got[4])
	}
	if !strings.Contains(got[5], `"error"`) || !strings.Contains(got[5], `"job_id":"4"`) ||
		strings.Contains(got[5], `"label"`) {
		t.Fatalf("mixed control/job line not rejected: %s", got[5])
	}
}

// TestCmdServeUnknownVerb pins the control-line failure mode: a
// mistyped or unsupported control object must be rejected with a
// structured unknown-field error, not fed into featurisation where it
// would surface as a baffling "neither path nor binary_b64" error.
func TestCmdServeUnknownVerb(t *testing.T) {
	dir, binary := makeTree(t)
	model := filepath.Join(t.TempDir(), "model.json")
	if _, err := withStdout(t, func() error {
		return cmdTrain([]string{"-corpus", dir, "-model", model, "-threshold", "0.3", "-trees", "40"})
	}); err != nil {
		t.Fatalf("train: %v", err)
	}
	events := filepath.Join(t.TempDir(), "events.jsonl")
	lines := []string{
		`{"relaod":"/models/new.json"}`, // typo'd control verb
		`{"shutdown":true}`,             // unsupported control verb
		// A job event carrying a producer-side extra field must keep
		// classifying: strict decoding applies to control objects only.
		`{"job_id":"1","exe":"a","path":"` + binary + `","timestamp":123}`,
	}
	if err := os.WriteFile(events, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := withStdout(t, func() error {
		return cmdServe([]string{"-model", model, "-input", events})
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	got := strings.Split(strings.TrimSpace(out), "\n")
	if len(got) != len(lines) {
		t.Fatalf("serve emitted %d results for %d lines:\n%s", len(got), len(lines), out)
	}
	for i, verb := range []string{"relaod", "shutdown"} {
		if !strings.Contains(got[i], `"error"`) || !strings.Contains(got[i], verb) {
			t.Fatalf("unknown verb %q not rejected with a structured error: %s", verb, got[i])
		}
		if strings.Contains(got[i], "binary_b64") {
			t.Fatalf("unknown verb %q fell through to featurisation: %s", verb, got[i])
		}
	}
	if !strings.Contains(got[2], `"label":"AppOne"`) {
		t.Fatalf("stream did not survive the rejected control lines: %s", got[2])
	}
}

// TestCmdServeHTTP drives the network mode end to end: `-input none
// -http 127.0.0.1:0` serves the HTTP API until the shutdown trigger,
// classifying and exposing metrics over a real socket.
func TestCmdServeHTTP(t *testing.T) {
	dir, binary := makeTree(t)
	model := filepath.Join(t.TempDir(), "model.json")
	if _, err := withStdout(t, func() error {
		return cmdTrain([]string{"-corpus", dir, "-model", model, "-threshold", "0.3", "-trees", "40"})
	}); err != nil {
		t.Fatalf("train: %v", err)
	}

	bound := make(chan string, 1)
	var shutdown func()
	var shutdownMu sync.Mutex
	serveHTTPBound = func(addr string, stop func()) {
		shutdownMu.Lock()
		shutdown = stop
		shutdownMu.Unlock()
		bound <- addr
	}
	defer func() { serveHTTPBound = nil }()

	serveDone := make(chan error, 1)
	go func() {
		serveDone <- cmdServe([]string{"-model", model, "-input", "none", "-http", "127.0.0.1:0", "-http-paths"})
	}()
	var base string
	select {
	case addr := <-bound:
		base = "http://" + addr
	case err := <-serveDone:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("HTTP listener never bound")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Classify by server-local path (-http-paths opted in).
	body := `{"exe":"job","path":"` + binary + `"}`
	cresp, err := http.Post(base+"/v1/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"label":"AppOne"`) {
		t.Fatalf("classify over HTTP: %d %s", cresp.StatusCode, raw)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mraw), "fhc_engine_cache_misses_total") {
		t.Fatalf("metrics exposition missing engine counters:\n%.400s", mraw)
	}

	shutdownMu.Lock()
	stop := shutdown
	shutdownMu.Unlock()
	stop()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve did not shut down cleanly: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("serve did not exit after shutdown")
	}

	if err := cmdServe([]string{"-model", model, "-input", "none"}); err == nil {
		t.Error("-input none without -http accepted")
	}
}

func TestCommandsRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, c := range commands() {
		names[c.name] = true
	}
	for _, want := range []string{"corpus", "hash", "compare", "strings", "nm", "ldd", "scan", "train", "classify", "report", "dups", "serve"} {
		if !names[want] {
			t.Errorf("command %q not registered", want)
		}
	}
}

// TestCmdServeRetrain drives the continuous-learning deployment the
// OPERATIONS.md runbook documents: HTTP serving with -retrain, harvest
// via classify traffic, a waited /v1/retrain kick, the promotion
// visible in /metrics and the artifact directory, and the training
// store persisted across shutdown.
func TestCmdServeRetrain(t *testing.T) {
	dir, _ := makeTree(t)
	model := filepath.Join(t.TempDir(), "model.json")
	if _, err := withStdout(t, func() error {
		return cmdTrain([]string{"-corpus", dir, "-model", model, "-threshold", "0.3", "-trees", "40"})
	}); err != nil {
		t.Fatalf("train: %v", err)
	}

	// Every binary of the install tree, for harvest traffic.
	var binaries []string
	if err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && info.Mode().IsRegular() {
			binaries = append(binaries, path)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(binaries) < 8 {
		t.Fatalf("tree has %d binaries, need 8", len(binaries))
	}

	store := filepath.Join(t.TempDir(), "store.jsonl")
	artifacts := filepath.Join(t.TempDir(), "artifacts")

	bound := make(chan string, 1)
	var shutdown func()
	var shutdownMu sync.Mutex
	serveHTTPBound = func(addr string, stop func()) {
		shutdownMu.Lock()
		shutdown = stop
		shutdownMu.Unlock()
		bound <- addr
	}
	defer func() { serveHTTPBound = nil }()

	serveDone := make(chan error, 1)
	go func() {
		serveDone <- cmdServe([]string{
			"-model", model, "-input", "none", "-http", "127.0.0.1:0", "-http-paths",
			"-retrain", "-retrain-every", "-1", "-retrain-confidence", "0.5",
			"-retrain-margin", "0.25", "-retrain-store", store,
			"-retrain-artifacts", artifacts,
		})
	}()
	var base string
	select {
	case addr := <-bound:
		base = "http://" + addr
	case err := <-serveDone:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("HTTP listener never bound")
	}

	post := func(path, body string) (int, string) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(raw)
	}

	// Harvest: classify every tree binary by path.
	for _, bin := range binaries {
		if code, raw := post("/v1/classify", `{"exe":"job","path":"`+bin+`"}`); code != http.StatusOK {
			t.Fatalf("classify %s: %d %s", bin, code, raw)
		}
	}
	sresp, err := http.Get(base + "/v1/retrain/status")
	if err != nil {
		t.Fatal(err)
	}
	sraw, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if !strings.Contains(string(sraw), `"harvested":`) {
		t.Fatalf("status: %s", sraw)
	}

	// A waited kick retrains, gates and promotes synchronously.
	code, raw := post("/v1/retrain", `{"wait":true}`)
	if code != http.StatusOK {
		t.Fatalf("retrain: %d %s", code, raw)
	}
	if !strings.Contains(raw, `"promoted":true`) || !strings.Contains(raw, `"trigger":"http"`) {
		t.Fatalf("retrain result: %s", raw)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"fhc_retrain_runs_total 1",
		"fhc_retrain_promotions_total 1",
		"fhc_engine_swaps_total 1",
	} {
		if !strings.Contains(string(mraw), want) {
			t.Fatalf("metrics exposition missing %q:\n%.600s", want, mraw)
		}
	}

	kept, err := filepath.Glob(filepath.Join(artifacts, "model-*.json"))
	if err != nil || len(kept) != 1 {
		t.Fatalf("artifacts = %v (%v), want one", kept, err)
	}
	if _, err := os.Stat(filepath.Join(artifacts, "latest")); err != nil {
		t.Fatalf("latest pointer: %v", err)
	}

	shutdownMu.Lock()
	stop := shutdown
	shutdownMu.Unlock()
	stop()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve did not shut down cleanly: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("serve did not exit after shutdown")
	}

	// The harvested corpus survived the restart boundary.
	st, err := os.Stat(store)
	if err != nil || st.Size() == 0 {
		t.Fatalf("training store not persisted: %v", err)
	}
}
