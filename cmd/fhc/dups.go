package main

// The dups subcommand audits an install tree for cross-class
// near-duplicates: pairs of executables in different classes whose
// symbol-feature digests are highly similar. These are usually labelling
// problems — the paper's CellRanger vs Cell-Ranger case, where one
// application installed under two paths silently splits a class — and
// finding them before training directly improves the classifier.

import (
	"errors"
	"flag"
	"fmt"

	"repro/internal/dataset"
	"repro/ssdeep"
)

func init() {
	extraCommands = append(extraCommands, command{
		"dups", "find cross-class near-duplicate executables in an install tree", cmdDups,
	})
}

func cmdDups(args []string) error {
	fs := flag.NewFlagSet("dups", flag.ExitOnError)
	minScore := fs.Int("min", 70, "minimum similarity score to report")
	feature := fs.String("feature", "symbols", "feature to compare: file, strings, symbols or needed")
	withinClass := fs.Bool("within", false, "also report near-duplicates inside one class")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("need exactly one directory")
	}
	kind, err := parseFeature(*feature)
	if err != nil {
		return err
	}
	samples, err := dataset.Scan(fs.Arg(0), 0)
	if err != nil {
		return err
	}

	ix := ssdeep.NewIndex()
	ids := make([]int, 0, len(samples))
	for i := range samples {
		d := samples[i].Digests[kind]
		if d.IsZero() {
			ids = append(ids, -1)
			continue
		}
		ids = append(ids, ix.Add(d))
	}
	// Map index ids back to samples.
	byID := map[int]int{}
	for si, id := range ids {
		if id >= 0 {
			byID[id] = si
		}
	}

	reported := 0
	for si := range samples {
		if ids[si] < 0 {
			continue
		}
		for _, m := range ix.Query(samples[si].Digests[kind], *minScore) {
			sj := byID[m.ID]
			if sj <= si {
				continue // report each pair once
			}
			sameClass := samples[si].Class == samples[sj].Class
			if sameClass && !*withinClass {
				continue
			}
			tag := "CROSS-CLASS"
			if sameClass {
				tag = "within-class"
			}
			fmt.Printf("%3d  %-12s %s  <->  %s\n", m.Score, tag, samples[si].Path(), samples[sj].Path())
			reported++
		}
	}
	fmt.Printf("%d near-duplicate pairs at score >= %d over %d samples (feature %s)\n",
		reported, *minScore, len(samples), kind)
	return nil
}

func parseFeature(name string) (dataset.FeatureKind, error) {
	switch name {
	case "file":
		return dataset.FeatureFile, nil
	case "strings":
		return dataset.FeatureStrings, nil
	case "symbols":
		return dataset.FeatureSymbols, nil
	case "needed":
		return dataset.FeatureNeeded, nil
	default:
		return 0, fmt.Errorf("unknown feature %q", name)
	}
}
