package main

// Pipeline subcommands: corpus, scan, train, classify, report — the
// paper's Figure 1 workflow from data collection to job labelling.

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/openset"
	"repro/internal/rf"
	"repro/internal/synth"
)

// cmdCorpus generates a synthetic install tree.
func cmdCorpus(args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	out := fs.String("out", "", "output directory (required)")
	scaleName := fs.String("scale", "small", "corpus scale: small, medium or paper")
	seed := fs.Uint64("seed", experiments.DefaultSeed, "generation seed")
	stripped := fs.Float64("stripped", 0, "fraction of samples emitted without a symbol table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return errors.New("-out is required")
	}
	scale, err := experiments.ParseScale(*scaleName)
	if err != nil {
		return err
	}
	var specs []synth.ClassSpec
	switch scale {
	case experiments.ScaleSmall:
		specs = synth.SmallManifest(10, 3, 16)
	case experiments.ScaleMedium:
		specs = synth.SmallManifest(35, 9, 90)
	default:
		specs = synth.PaperManifest()
	}
	corpus, err := synth.Generate(specs, synth.Options{Seed: *seed, StrippedFraction: *stripped})
	if err != nil {
		return err
	}
	if err := corpus.WriteTree(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d samples across %d classes to %s\n", len(corpus.Samples), len(specs), *out)
	return nil
}

// cmdScan extracts features from an install tree and prints one line per
// sample, or writes a JSON-lines feature file for later training.
func cmdScan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	workers := fs.Int("workers", 0, "extraction workers (0 = GOMAXPROCS)")
	jsonOut := fs.String("json", "", "write samples as JSON lines to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("need exactly one directory")
	}
	samples, err := dataset.Scan(fs.Arg(0), *workers)
	if err != nil {
		return err
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dataset.SaveSamples(f, samples); err != nil {
			return err
		}
	} else {
		for i := range samples {
			s := &samples[i]
			fmt.Printf("%s\t%s\t%s\t%s\n", s.Class, s.Path(),
				s.Digests[dataset.FeatureSymbols], s.Digests[dataset.FeatureFile])
		}
	}
	stats := dataset.ComputeStats(samples)
	fmt.Fprintf(os.Stderr, "scanned %d samples in %d classes (%d stripped)\n",
		stats.Samples, stats.Classes, stats.Stripped)
	return nil
}

// cmdTrain fits a classifier on a labelled install tree and stores the
// model.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	corpusDir := fs.String("corpus", "", "labelled install tree")
	samplesPath := fs.String("samples", "", "JSON-lines feature file from 'fhc scan -json' (alternative to -corpus)")
	modelPath := fs.String("model", "", "output model file (required)")
	kind := fs.String("kind", model.KindRF,
		"model kind: "+strings.Join(model.Kinds(), ", "))
	threshold := fs.Float64("threshold", 0, "confidence threshold (0 = tune on an inner split)")
	seed := fs.Uint64("seed", experiments.DefaultSeed, "training seed")
	trees := fs.Int("trees", 200, "Random Forest size (rf kind only)")
	grid := fs.Bool("grid", false, "run the full hyper-parameter grid search (rf kind only)")
	calFrac := fs.Float64("calibrate", 0,
		"freeze this per-class fraction of the corpus as a holdout and tune open-set abstention thresholds on it; the calibration is persisted inside the model artifact (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*corpusDir == "") == (*samplesPath == "") || *modelPath == "" {
		return errors.New("need -model and exactly one of -corpus or -samples")
	}
	var samples []dataset.Sample
	var err error
	if *corpusDir != "" {
		samples, err = dataset.Scan(*corpusDir, 0)
	} else {
		var f *os.File
		f, err = os.Open(*samplesPath)
		if err == nil {
			samples, err = dataset.LoadSamples(f)
			f.Close()
		}
	}
	if err != nil {
		return err
	}
	samples = dataset.ApplyPaperCollectionRules(samples, 3)
	if len(samples) == 0 {
		return errors.New("no usable samples (need unstripped ELF executables in >= 3 versions per class)")
	}
	var calHold []dataset.Sample
	if *calFrac != 0 {
		if *calFrac < 0 || *calFrac >= 0.5 {
			return errors.New("-calibrate must be in (0, 0.5): the model still has to train on most of each class")
		}
		samples, calHold = calibrationSplit(samples, *calFrac)
		if len(calHold) == 0 {
			return errors.New("-calibrate froze no samples: every class is too small to give up a member")
		}
	}
	cfg := core.Config{
		Model:     *kind,
		Forest:    rf.Params{NumTrees: *trees},
		Threshold: *threshold,
		Seed:      *seed,
	}
	if *grid {
		cfg.Grid = core.DefaultGrid()
	}
	clf, err := core.Train(samples, cfg)
	if err != nil {
		return err
	}
	if len(calHold) > 0 {
		// Thresholds tuned on samples the model never trained on; the
		// calibration is saved inside the artifact below, so swaps and
		// rollouts carry model and thresholds as one unit.
		if _, err := clf.Calibrate(calHold, openset.CalibrateOptions{}); err != nil {
			return fmt.Errorf("calibrate: %w", err)
		}
	}
	f, err := os.Create(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := clf.Save(f); err != nil {
		return err
	}
	calNote := ""
	if len(calHold) > 0 {
		calNote = fmt.Sprintf("; calibrated for open-set abstention on %d held-out samples", len(calHold))
	}
	fmt.Printf("trained %s on %d samples, %d classes; threshold %.2f%s; model written to %s\n",
		clf.ModelKind(), len(samples), len(clf.Classes()), clf.Threshold(), calNote, *modelPath)
	return nil
}

// calibrationSplit freezes a per-class fraction of the corpus for
// abstention-threshold tuning: every k-th member of each class
// (k = round(1/frac)) is held out in corpus order, so the thresholds
// are tuned on samples the model never trained on, deterministically
// and independently of the training seed. Classes too small to reach a
// k-th member train whole; Calibrate falls back to global floors for
// any class the holdout under-represents.
func calibrationSplit(samples []dataset.Sample, frac float64) (trainSet, holdout []dataset.Sample) {
	k := int(1/frac + 0.5)
	if k < 2 {
		k = 2
	}
	seen := map[string]int{}
	for i := range samples {
		n := seen[samples[i].Class]
		seen[samples[i].Class] = n + 1
		if n%k == k-1 {
			holdout = append(holdout, samples[i])
		} else {
			trainSet = append(trainSet, samples[i])
		}
	}
	return trainSet, holdout
}

// cmdClassify labels executables with a trained model.
func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	modelPath := fs.String("model", "", "model file (required)")
	threshold := fs.Float64("threshold", -1, "override the confidence threshold (-1 keeps the model's)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return errors.New("-model is required")
	}
	if fs.NArg() == 0 {
		return errors.New("no binaries given")
	}
	clf, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	if *threshold >= 0 {
		clf.SetThreshold(*threshold)
	}
	for _, path := range fs.Args() {
		bin, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		s, err := dataset.FromBinary("", "", path, bin)
		if err != nil {
			return err
		}
		pred := clf.Classify(&s)
		if pred.Label == core.UnknownLabel {
			fmt.Printf("%s\t%s\t(closest: %s, confidence %.2f)\n",
				path, pred.Label, pred.Class, pred.Confidence)
		} else {
			fmt.Printf("%s\t%s\t(confidence %.2f)\n", path, pred.Label, pred.Confidence)
		}
	}
	return nil
}

// cmdReport evaluates a model against a labelled install tree.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	corpusDir := fs.String("corpus", "", "labelled install tree (required)")
	modelPath := fs.String("model", "", "model file (required)")
	format := fs.String("format", "text", "output format: text, csv or md")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corpusDir == "" || *modelPath == "" {
		return errors.New("-corpus and -model are required")
	}
	samples, err := dataset.Scan(*corpusDir, 0)
	if err != nil {
		return err
	}
	clf, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	report, err := clf.Evaluate(samples)
	if err != nil {
		return err
	}
	switch *format {
	case "text", "":
		fmt.Print(report.Format())
	case "csv":
		fmt.Print(report.CSV())
	case "md":
		fmt.Print(report.Markdown())
	default:
		return fmt.Errorf("unknown format %q (want text, csv or md)", *format)
	}
	return nil
}
