// Command fhcvet is the repository's invariant checker: a go vet
// -vettool multichecker bundling the four project-specific analyzers
// (atomicfield, lockhold, hotpath, metricreg) built on the in-repo
// analysis framework, with no dependency outside the standard library.
//
// It runs in two modes:
//
//   - as a vet tool: go vet -vettool=$(which fhcvet) ./...
//     cmd/go probes it with -V=full and -flags, then invokes it once
//     per package with a JSON config; diagnostics land on stderr and
//     cross-package facts travel through cmd/go's .vetx files;
//   - standalone: fhcvet [packages] (default ./...) first runs the
//     whole-repo checks that need sight beyond one package — every
//     fhc_* metric token in the repository's markdown must name a
//     series the code actually registers — then re-executes itself
//     through go vet -vettool for the per-package analyzers.
//
// Exit status: 0 clean, 1 tool failure, 2 findings (vet convention).
//
// Concurrency contract: single-goroutine per invocation; cmd/go
// parallelises by running one process per package.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/tools/fhcvet/analysis"
	"repro/internal/tools/fhcvet/atomicfield"
	"repro/internal/tools/fhcvet/hotpath"
	"repro/internal/tools/fhcvet/lockhold"
	"repro/internal/tools/fhcvet/metricreg"
	"repro/internal/tools/mdscan"
)

var analyzers = []*analysis.Analyzer{
	atomicfield.Analyzer,
	lockhold.Analyzer,
	hotpath.Analyzer,
	metricreg.Analyzer,
}

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			analysis.PrintVersion(os.Stdout)
			return
		case a == "-flags":
			analysis.PrintFlags(os.Stdout, analyzers)
			return
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			return
		}
	}
	// Invoked by cmd/go: the unit config is the single non-flag
	// argument, a *.cfg path.
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			os.Exit(analysis.RunUnit(a, analyzers))
		}
	}
	os.Exit(standalone(args))
}

func usage() {
	fmt.Println("usage: fhcvet [packages]  (standalone: metric-docs cross-check, then go vet -vettool=self)")
	fmt.Println("       go vet -vettool=$(which fhcvet) [packages]")
	fmt.Println()
	fmt.Println("analyzers:")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Printf("  %-12s %s\n", a.Name, doc)
	}
}

// standalone runs the whole-repo docs cross-check and then delegates
// the per-package analyzers to go vet with this binary as the tool.
func standalone(args []string) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fhcvet: %v\n", err)
		return 1
	}
	problems := checkMetricDocs(root, os.Stderr)

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fhcvet: %v\n", err)
		return 1
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Dir = root
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); ok {
			return 2
		}
		fmt.Fprintf(os.Stderr, "fhcvet: running go vet: %v\n", err)
		return 1
	}
	if problems > 0 {
		return 2
	}
	return 0
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

// metricToken matches fhc_* series references in markdown, including
// the trailing wildcard of family references like fhc_engine_*.
var metricToken = regexp.MustCompile(`\bfhc_[a-z0-9_]*\*?`)

// checkMetricDocs verifies that every fhc_* token the repository's
// markdown mentions names a metric the code registers (exactly, as a
// histogram-derived series, or as a family prefix). This is the half
// of the metricreg contract that needs whole-repo sight: docs rot
// quietly when a metric is renamed in code.
func checkMetricDocs(root string, out *os.File) int {
	names, err := registeredNames(root)
	if err != nil {
		fmt.Fprintf(out, "fhcvet: collecting metric names: %v\n", err)
		return 1
	}
	problems := 0
	for _, md := range markdownFiles(root) {
		raw, err := os.ReadFile(md)
		if err != nil {
			fmt.Fprintf(out, "fhcvet: %v\n", err)
			problems++
			continue
		}
		doc := mdscan.CodeAndProse(string(raw))
		reported := map[string]bool{}
		for _, tok := range metricToken.FindAllString(doc, -1) {
			if reported[tok] || metricreg.KnownSeries(tok, names) {
				continue
			}
			reported[tok] = true
			rel, _ := filepath.Rel(root, md)
			fmt.Fprintf(out, "%s: doc rot: %s is not a metric the code registers [metricreg]\n", rel, tok)
			problems++
		}
	}
	return problems
}

// registeredNames sweeps the module's non-test Go files for metric
// registrations, syntactically (metricreg.CollectNames).
func registeredNames(root string) (map[string]string, error) {
	names := map[string]string{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		metricreg.CollectNames(f, names)
		return nil
	})
	return names, err
}

// markdownFiles lists the repository's markdown, skipping hidden
// directories and testdata.
func markdownFiles(root string) []string {
	var files []string
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return fs.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			files = append(files, path)
		}
		return nil
	})
	sort.Strings(files)
	return files
}
