// Command fhc-experiments regenerates the paper's tables and figures plus
// this repository's ablations on a synthetic corpus.
//
// Usage:
//
//	fhc-experiments [-scale small|medium|paper] [-seed N] [-only LIST]
//
// -only selects a comma-separated subset of
// table1,table2,table3,table4,table5,figure2,figure3,a1,a2,a3,a4,a5,a6,
// confusion; the default runs everything. Output is plain text shaped
// like the paper's presentation; EXPERIMENTS.md records a full
// paper-scale run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "medium", "corpus scale: small, medium or paper")
	seed := flag.Uint64("seed", experiments.DefaultSeed, "corpus and training seed")
	only := flag.String("only", "", "comma-separated experiments to run (default all)")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	start := time.Now()
	fmt.Printf("== Fuzzy Hash Classifier experiments (scale=%s seed=%d) ==\n", scale, *seed)
	p, err := experiments.Run(scale, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pipeline: %d samples, %d train / %d test (%d unknown), %d known classes, threshold %.2f [%s]\n\n",
		len(p.Samples), len(p.Train), len(p.Test), p.Split.NumUnknownTest(p.Samples),
		len(p.Split.KnownClasses), p.Classifier.Threshold(), time.Since(start).Round(time.Millisecond))

	type experiment struct {
		name string
		run  func() (interface{ Format() string }, error)
	}
	exps := []experiment{
		{"table1", func() (interface{ Format() string }, error) { return experiments.RunTable1(p) }},
		{"table2", func() (interface{ Format() string }, error) { return experiments.RunTable2(p) }},
		{"table3", func() (interface{ Format() string }, error) { return experiments.RunTable3(p) }},
		{"table4", func() (interface{ Format() string }, error) { return experiments.RunTable4(p) }},
		{"table5", func() (interface{ Format() string }, error) { return experiments.RunTable5(p) }},
		{"figure2", func() (interface{ Format() string }, error) { return experiments.RunFigure2(p) }},
		{"figure3", func() (interface{ Format() string }, error) { return experiments.RunFigure3(p) }},
		{"a1", func() (interface{ Format() string }, error) { return experiments.RunAblationEditDistance(p) }},
		{"a2", func() (interface{ Format() string }, error) { return experiments.RunAblationNeededLibs(p) }},
		{"a3", func() (interface{ Format() string }, error) { return experiments.RunAblationModels(p) }},
		{"a4", func() (interface{ Format() string }, error) { return experiments.RunAblationStripped(p) }},
		{"a5", func() (interface{ Format() string }, error) { return experiments.RunAblationDynamic(p) }},
		{"a6", func() (interface{ Format() string }, error) {
			return experiments.RunSeedSensitivity(scale, []uint64{*seed, *seed + 1, *seed + 2})
		}},
		{"confusion", func() (interface{ Format() string }, error) { return experiments.RunConfusionPairs(p, 12) }},
	}
	for _, e := range exps {
		if !want(e.name) {
			continue
		}
		t0 := time.Now()
		result, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			continue
		}
		fmt.Printf("---- %s [%s] ----\n%s\n", e.name, time.Since(t0).Round(time.Millisecond), result.Format())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fhc-experiments:", err)
	os.Exit(1)
}
