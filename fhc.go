// Package fhc is the public API of the Fuzzy Hash Classifier, a
// reproduction of "Using Malware Detection Techniques for HPC Application
// Classification" (Jakobsche & Ciorba, SC 2024).
//
// The classifier labels HPC application executables by application class
// using similarity-preserving fuzzy hashes (package repro/ssdeep) of three
// views of each binary — the raw file bytes, its strings(1) output and its
// nm(1) global symbols — fed into a Random Forest with balanced class
// weights. Samples whose prediction confidence falls below a tuned
// threshold are labelled "-1" (unknown), the signal for software deviating
// from allocation purpose.
//
// # Quick start
//
//	samples, _ := fhc.ScanTree("/apps", 0)            // label by install path
//	clf, _ := fhc.Train(samples, fhc.Config{Seed: 1}) // tune + fit
//	pred := clf.Classify(&incoming)                   // label a new binary
//	if pred.Label == fhc.UnknownLabel { ... }         // flag for review
//
// The runnable programs under examples/ walk through the full workflow,
// and cmd/fhc exposes it as a command-line tool. Everything is pure Go on
// the standard library; no cgo, no network, no external binaries.
package fhc

import (
	"fmt"
	"io"
	"os"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/httpserve"
	"repro/internal/knn"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/openset"
	"repro/internal/retrain"
	"repro/internal/rf"
	"repro/internal/serve"
	"repro/internal/svm"
	"repro/internal/synth"
)

// Re-exported core types. The type aliases keep one canonical definition
// while giving users a single import.
type (
	// Sample is a labelled executable reduced to its fuzzy-hash features.
	Sample = dataset.Sample
	// FeatureKind enumerates the fuzzy-hash features of a sample.
	FeatureKind = dataset.FeatureKind
	// Classifier is a trained Fuzzy Hash Classifier.
	Classifier = core.Classifier
	// Config configures training.
	Config = core.Config
	// Grid is the hyper-parameter search space for training-time tuning.
	Grid = core.Grid
	// Prediction is the classifier's answer for one sample.
	Prediction = core.Prediction
	// ThresholdScore is one point of the confidence-threshold sweep.
	ThresholdScore = core.ThresholdScore
	// Model is the pluggable classification-model surface; Config.Model
	// selects the registered kind ("rf", "knn", "svm") trained on the
	// fuzzy-hash similarity features.
	Model = model.Model
	// ForestParams are the Random Forest hyper-parameters.
	ForestParams = rf.Params
	// KNNParams are the K-nearest-neighbour hyper-parameters.
	KNNParams = knn.Params
	// SVMParams are the linear SVM hyper-parameters.
	SVMParams = svm.Params
	// Report is a multi-class classification report.
	Report = ml.Report
	// ClassMetrics holds per-class precision/recall/f1/support.
	ClassMetrics = ml.ClassMetrics
	// Split is a two-phase train/test split.
	Split = ml.Split
	// SplitOptions configures SplitTwoPhase.
	SplitOptions = ml.SplitOptions
	// ClassSpec declares one synthetic application class.
	ClassSpec = synth.ClassSpec
	// CorpusOptions configures synthetic corpus generation.
	CorpusOptions = synth.Options
	// Corpus is a generated set of synthetic application executables.
	Corpus = synth.Corpus
	// MutationRates parameterises synthetic version evolution.
	MutationRates = synth.MutationRates
	// Monitor labels job submissions and applies allocation policy — the
	// decision-support layer of the paper's Figure 1 workflow.
	Monitor = monitor.Monitor
	// MonitorPolicy declares allocation purposes and blocklisted classes.
	MonitorPolicy = monitor.Policy
	// JobEvent is one observed job submission.
	JobEvent = monitor.Event
	// Finding is one policy observation about a job.
	Finding = monitor.Finding
	// FindingKind classifies a policy finding.
	FindingKind = monitor.FindingKind
	// Collector deduplicates and extracts job executables (the paper's
	// Slurm-prolog collection mechanism).
	Collector = collector.Collector
	// CollectorOptions configures a Collector.
	CollectorOptions = collector.Options
	// CollectorStats counts collector activity.
	CollectorStats = collector.Stats
	// Engine is the serving front for a classifier: an exact-hash
	// prediction cache with in-flight coalescing over a micro-batching
	// dispatcher. Predictions are bit-identical to Classifier.Classify.
	Engine = serve.Engine
	// EngineOptions configures an Engine's batching and caching.
	EngineOptions = serve.Options
	// EngineStats is a snapshot of engine activity.
	EngineStats = serve.Stats
	// MonitorObservation pairs one job event's prediction with its
	// policy findings, as returned by Monitor.ObserveAll.
	MonitorObservation = monitor.Observation
	// MonitorLabeler is the labelling surface a Monitor drives;
	// *Classifier and *Engine both satisfy it.
	MonitorLabeler = monitor.Labeler
	// HTTPServer is the network front end over an Engine: the versioned
	// classify/swap JSON API plus health and Prometheus metrics
	// endpoints (see internal/httpserve).
	HTTPServer = httpserve.Server
	// HTTPServerOptions configures an HTTPServer: body limits,
	// concurrency backpressure, path-request policy, model loading.
	HTTPServerOptions = httpserve.Options
	// HTTPClassifyRequest is the wire request of POST /v1/classify and
	// each element of a batch request.
	HTTPClassifyRequest = httpserve.ClassifyRequest
	// HTTPClassifyResponse is one prediction on the wire.
	HTTPClassifyResponse = httpserve.ClassifyResponse
	// HTTPBatchRequest is the wire request of POST /v1/classify/batch.
	HTTPBatchRequest = httpserve.BatchRequest
	// HTTPBatchResponse holds batch results in request order.
	HTTPBatchResponse = httpserve.BatchResponse
	// HTTPSwapRequest names a model artifact for POST /v1/model/swap.
	HTTPSwapRequest = httpserve.SwapRequest
	// HTTPSwapResponse acknowledges an installed hot-swap.
	HTTPSwapResponse = httpserve.SwapResponse
	// MetricsRegistry is the dependency-free Prometheus-text metrics
	// registry the HTTP layer exposes on GET /metrics; pass one via
	// HTTPServerOptions.Registry to add application series.
	MetricsRegistry = metrics.Registry
	// Retrainer is the continuous-learning subsystem: it harvests
	// labelled windows into a bounded class-balanced training store,
	// retrains in the background on a trigger policy, and promotes
	// candidates that pass the holdout gate through Engine.Swap with
	// zero downtime (see internal/retrain and OPERATIONS.md).
	Retrainer = retrain.Retrainer
	// RetrainOptions configures a Retrainer: store bounds and
	// persistence, trigger policy, harvest confidence gate, holdout
	// fraction, promotion margin, artifact retention and the candidate
	// training configuration.
	RetrainOptions = retrain.Options
	// RetrainStoreOptions bounds and persists the labelled training
	// store (RetrainOptions.Store).
	RetrainStoreOptions = retrain.StoreOptions
	// RetrainStats is a snapshot of retrainer activity: run/promotion/
	// rejection counters, harvest totals, store population and the last
	// cycle's result.
	RetrainStats = retrain.Stats
	// RetrainResult describes one retraining cycle: the trigger, the
	// frozen split, both holdout macro-F1 scores, per-class deltas and
	// the promotion verdict.
	RetrainResult = retrain.Result
	// HTTPRetrainRequest kicks a continuous-learning cycle over POST
	// /v1/retrain; set Wait to block for the cycle's result.
	HTTPRetrainRequest = httpserve.RetrainRequest
	// HTTPRetrainResponse acknowledges a triggered cycle and, for
	// waited requests, carries its result.
	HTTPRetrainResponse = httpserve.RetrainResponse
	// Verdict is the calibrated open-set decision attached to a
	// Prediction: "class", "unknown" or "ambiguous" (see
	// internal/openset).
	Verdict = openset.Verdict
	// Calibration is the versioned open-set abstention policy tuned by
	// Classifier.Calibrate on a frozen holdout and persisted inside the
	// model artifact, so hot swaps install model and thresholds as one
	// atomic unit.
	Calibration = openset.Calibration
	// CalibrateOptions tunes Classifier.Calibrate's abstention budget.
	CalibrateOptions = openset.CalibrateOptions
	// DriftDetector watches served verdicts for population drift
	// against a calibration baseline and latches an alarm — wire one
	// into HTTPServerOptions.Drift and RetrainOptions.Drift so drifting
	// traffic kicks a retraining cycle.
	DriftDetector = openset.Detector
	// DriftOptions configures a DriftDetector.
	DriftOptions = openset.DriftOptions
	// DriftState is a snapshot of a DriftDetector.
	DriftState = openset.DriftState
	// DriftBaseline is the expected verdict population a calibration
	// records for its drift detector.
	DriftBaseline = openset.Baseline
)

// UnknownLabel is the class label of samples that resemble no known
// application class (the paper's "-1").
const UnknownLabel = core.UnknownLabel

// Calibrated open-set verdicts, as carried by Prediction.Verdict.
const (
	// VerdictClass: the prediction names a class with calibrated
	// confidence, margin and distance evidence.
	VerdictClass = openset.VerdictClass
	// VerdictUnknown: the sample resembles no known class well enough;
	// the label is demoted to UnknownLabel.
	VerdictUnknown = openset.VerdictUnknown
	// VerdictAmbiguous: two classes compete for the label; the raw
	// label stands but self-training must not harvest it.
	VerdictAmbiguous = openset.VerdictAmbiguous
)

// Feature kinds, in the order the paper introduces them.
const (
	FeatureFile    = dataset.FeatureFile
	FeatureStrings = dataset.FeatureStrings
	FeatureSymbols = dataset.FeatureSymbols
	FeatureNeeded  = dataset.FeatureNeeded
)

// Model kinds selectable via Config.Model.
const (
	// ModelRF is the paper's Random Forest, the default.
	ModelRF = model.KindRF
	// ModelKNN is the K-nearest-neighbour comparison model.
	ModelKNN = model.KindKNN
	// ModelSVM is the linear one-vs-rest SVM comparison model.
	ModelSVM = model.KindSVM
)

// ModelKinds returns the registered model kind tags, sorted.
func ModelKinds() []string {
	return model.Kinds()
}

// Split modes for SplitTwoPhase.
const (
	// PaperSplit assigns unknown classes from the samples' markers.
	PaperSplit = ml.PaperSplit
	// RandomSplit draws unknown classes randomly (the paper's 80/20).
	RandomSplit = ml.RandomSplit
)

// Finding kinds, one per guiding question of the paper plus the
// blocklist hit.
const (
	// UnknownApplication: the executable resembles no known class.
	UnknownApplication = monitor.UnknownApplication
	// PurposeDeviation: the class is outside the allocation's purpose.
	PurposeDeviation = monitor.PurposeDeviation
	// NewUserBehaviour: the user never ran this class before.
	NewUserBehaviour = monitor.NewUserBehaviour
	// BlockedApplication: the class is blocklisted.
	BlockedApplication = monitor.BlockedApplication
)

// NewMonitor builds a job monitor over a labeler and a policy. Pass the
// trained classifier directly, or — for an always-on deployment — an
// Engine wrapping it, so the monitor inherits prediction caching and
// micro-batched ObserveAll classification.
func NewMonitor(labeler MonitorLabeler, policy MonitorPolicy) *Monitor {
	return monitor.New(labeler, policy)
}

// NewCollector builds an executable collector with an exact-hash
// deduplication cache: repeated executions of the same binary (the common
// case, per the paper) skip feature extraction.
func NewCollector(opt CollectorOptions) *Collector {
	return collector.New(opt)
}

// NewEngine starts a serving engine over a trained classifier. The
// engine micro-batches concurrent Classify calls into the classifier's
// batch path and fronts them with an exact-hash prediction cache, so
// duplicate submissions — the common case in the paper's always-on
// deployment — skip featurisation entirely. Hand the engine to
// NewMonitor as the labeler of a production Figure-1 workflow, and
// Close it when done. The zero EngineOptions selects serving defaults.
//
// Retrained models deploy without a restart: Engine.Swap installs a new
// classifier with zero downtime and orphans every prediction cached
// under the previous model (see examples/model-swap).
func NewEngine(clf *Classifier, opt EngineOptions) *Engine {
	return serve.New(clf, opt)
}

// NewHTTPServer puts an engine on the network: a versioned JSON API
// (POST /v1/classify, /v1/classify/batch, /v1/model/swap) with health
// probes and a Prometheus /metrics endpoint wired into the engine's
// cache, batching and swap counters. The zero HTTPServerOptions selects
// production defaults: 64 MiB body limit, 8x GOMAXPROCS concurrent
// requests (excess answered 429), server-local path requests disabled.
// Run with ListenAndServe/Serve, drain with Shutdown; the caller keeps
// ownership of the engine (see examples/http-serving).
func NewHTTPServer(engine *Engine, opt HTTPServerOptions) *HTTPServer {
	return httpserve.New(engine, opt)
}

// NewMetricsRegistry returns an empty metrics registry, for sharing one
// exposition between the HTTP layer and application series.
func NewMetricsRegistry() *MetricsRegistry {
	return metrics.NewRegistry()
}

// NewDriftDetector builds a population-drift detector over a
// calibration baseline (Calibration.Baseline from a calibrated
// classifier). Feed it every served verdict — HTTPServerOptions.Drift
// does this on all classify legs — and it latches an alarm when the
// served confidence distribution or unknown-verdict rate departs from
// the baseline. Share the same detector with RetrainOptions.Drift so a
// promoted model re-baselines it atomically with the swap.
func NewDriftDetector(base DriftBaseline, opt DriftOptions) *DriftDetector {
	return openset.NewDetector(base, opt)
}

// NewRetrainer starts the continuous-learning loop over a serving
// engine and the classifier it currently serves: labelled windows are
// harvested into a bounded class-balanced store (confident predictions
// via Retrainer.ObservePrediction, operator ground truth via
// Retrainer.HarvestLabeled), background cycles retrain on the
// configured trigger policy, and a candidate that meets-or-beats the
// incumbent's holdout macro-F1 within the margin is promoted through
// Engine.Swap with zero downtime — a rejected candidate leaves the
// incumbent serving bit-identically. Wire the same Retrainer into
// HTTPServerOptions.Retrainer to expose POST /v1/retrain and GET
// /v1/retrain/status, and Close it when done (the store persists on
// Close). See examples/continuous-learning and OPERATIONS.md.
func NewRetrainer(engine *Engine, incumbent *Classifier, opt RetrainOptions) (*Retrainer, error) {
	return retrain.New(engine, incumbent, opt)
}

// Train fits a Fuzzy Hash Classifier on labelled training samples. With a
// zero Config.Threshold the confidence threshold is tuned on an inner
// split of the training set, as the paper does.
func Train(samples []Sample, cfg Config) (*Classifier, error) {
	return core.Train(samples, cfg)
}

// Load reads a classifier previously stored with Classifier.Save.
func Load(r io.Reader) (*Classifier, error) {
	return core.Load(r)
}

// LoadFile reads a classifier from a model file.
func LoadFile(path string) (*Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fhc: %w", err)
	}
	defer f.Close()
	return core.Load(f)
}

// SampleFromBinary extracts all features from an in-memory ELF binary.
func SampleFromBinary(class, version, exe string, bin []byte) (Sample, error) {
	return dataset.FromBinary(class, version, exe, bin)
}

// SampleFromFile extracts all features from an ELF executable on disk.
// The labels are free-form; for unlabelled production binaries pass
// placeholders.
func SampleFromFile(class, version, exe, path string) (Sample, error) {
	bin, err := os.ReadFile(path)
	if err != nil {
		return Sample{}, fmt.Errorf("fhc: %w", err)
	}
	return dataset.FromBinary(class, version, exe, bin)
}

// ScanTree loads labelled samples from an install tree laid out as
// root/Class/Version/executable, the structure the paper scrapes.
// workers <= 0 selects GOMAXPROCS.
func ScanTree(root string, workers int) ([]Sample, error) {
	return dataset.Scan(root, workers)
}

// SplitTwoPhase performs the paper's evaluation split: classes 80/20 into
// known/unknown, then a stratified 60/40 sample split within known
// classes.
func SplitTwoPhase(samples []Sample, opt SplitOptions) (Split, error) {
	return ml.SplitTwoPhase(samples, opt)
}

// StratifiedKFold partitions sample indices into k class-balanced folds
// for cross-validation.
func StratifiedKFold(samples []Sample, k int, seed uint64) ([][]int, error) {
	return ml.StratifiedKFold(samples, k, seed)
}

// SaveSamples writes extracted samples as JSON lines — digests and labels
// only, never binary content.
func SaveSamples(w io.Writer, samples []Sample) error {
	return dataset.SaveSamples(w, samples)
}

// LoadSamples reads samples written by SaveSamples.
func LoadSamples(r io.Reader) ([]Sample, error) {
	return dataset.LoadSamples(r)
}

// ClassificationReport scores predictions against true labels with the
// paper's metrics (per-class precision/recall/f1 plus micro, macro and
// weighted averages).
func ClassificationReport(yTrue, yPred []string) (*Report, error) {
	return ml.ClassificationReport(yTrue, yPred)
}

// GenerateCorpus builds a synthetic corpus of ELF application executables
// following the given class manifest. It substitutes for the paper's
// private cluster dataset; see DESIGN.md for the substitution argument.
func GenerateCorpus(specs []ClassSpec, opt CorpusOptions) (*Corpus, error) {
	return synth.Generate(specs, opt)
}

// SamplesFromCorpus extracts features from a generated corpus in parallel.
func SamplesFromCorpus(c *Corpus, workers int) ([]Sample, error) {
	return dataset.FromCorpus(c, workers)
}

// PaperManifest returns the 92-class corpus manifest reconstructed from
// the paper's Tables 3 and 4.
func PaperManifest() []ClassSpec {
	return synth.PaperManifest()
}

// SmallManifest returns a reduced manifest: the first nKnown known and
// nUnknown unknown paper classes, capped at maxSamples per class
// (0 keeps the paper sizes).
func SmallManifest(nKnown, nUnknown, maxSamples int) []ClassSpec {
	return synth.SmallManifest(nKnown, nUnknown, maxSamples)
}

// DefaultGrid returns the hyper-parameter grid used for the paper-scale
// experiments.
func DefaultGrid() *Grid {
	return core.DefaultGrid()
}
